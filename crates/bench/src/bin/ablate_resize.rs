//! Ablation: per-segment resizing in the Java-style striped hash table.
//!
//! Figure 10 sizes buckets == elements, so the fixed-capacity `java` table
//! never pays for its missing resize support. This ablation asks what
//! happens when the initial sizing guess is wrong by ~64×: the fixed
//! table degenerates into long chains (every operation is an O(chain)
//! scan under a segment lock), while the resizable table (the CHM
//! behaviour the paper describes: "each segment ... can be individually
//! resized") grows itself back to O(1) buckets.
//!
//! It also quantifies the cost of carrying resize support when the sizing
//! *is* right: well-sized fixed vs resizable tables should be within a few
//! percent of each other (one extra indirection per operation). The
//! `java-resize` scenario starts at 2 buckets/segment and must grow to fit
//! 8192 elements during the initial fill of every repetition.
//!
//! Scenarios: `ablate-resize.*` in the registry (`bench_all --list`).

fn main() {
    optik_bench::cli::run_family(
        "ablate-resize",
        "fixed vs per-segment-resizable striped tables",
        false,
    );
}
