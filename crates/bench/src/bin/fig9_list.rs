//! Figure 9: throughput of linked-list algorithms on five workloads.
//!
//! Workloads (all 20% effective updates): large (8192), medium (1024),
//! small (64), large-skewed (8192, zipf a=0.9), small-skewed (64, zipf).
//! Algorithms: harris, lazy, lazy-cache, mcs-gl-opt, optik-gl, optik,
//! optik-cache.
//!
//! Paper shape: node caching helps (~50%/15% on large/small); optik-gl >
//! mcs-gl-opt everywhere; fine-grained optik ≈ lazy/harris at low
//! contention, ~22% faster than lazy on small lists, and far ahead of lazy
//! on small-skewed.
//!
//! Scenarios: `fig9.*` in the registry (`bench_all --list`).

fn main() {
    optik_bench::cli::run_family("fig9", "linked lists on five workloads", false);
}
