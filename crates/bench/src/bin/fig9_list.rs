//! Figure 9: throughput of linked-list algorithms on five workloads.
//!
//! Workloads (all 20% effective updates): large (8192), medium (1024),
//! small (64), large-skewed (8192, zipf a=0.9), small-skewed (64, zipf).
//! Algorithms: harris, lazy, lazy-cache, mcs-gl-opt, optik-gl, optik,
//! optik-cache.
//!
//! Paper shape: node caching helps (~50%/15% on large/small); optik-gl >
//! mcs-gl-opt everywhere; fine-grained optik ≈ lazy/harris at low
//! contention, ~22% faster than lazy on small lists, and far ahead of lazy
//! on small-skewed.

use optik_bench::{banner, Config};
use optik_harness::runner::run_set_workload;
use optik_harness::table::{fmt_mops, Table};
use optik_harness::{stats, ConcurrentSet, Workload};
use optik_lists::{
    GlobalLockList, HarrisList, LazyCacheList, LazyList, OptikCacheList, OptikGlList, OptikList,
};

/// Median Mops/s for a plain (stateless-handle) set.
fn measure_plain<S: ConcurrentSet>(
    make: impl Fn() -> S,
    w: &Workload,
    threads: usize,
    cfg: &Config,
) -> f64 {
    let mut mops = Vec::new();
    for rep in 0..cfg.reps {
        let set = make();
        w.initial_fill(cfg.seed + rep as u64, |k, v| set.insert(k, v));
        let res = run_set_workload(
            threads,
            cfg.duration,
            w,
            cfg.seed + rep as u64,
            false,
            |_| &set,
        );
        mops.push(res.mops());
    }
    stats::median(&mops)
}

/// Median Mops/s for the node-caching lists (per-thread handles).
fn measure_optik_cache(w: &Workload, threads: usize, cfg: &Config) -> f64 {
    let mut mops = Vec::new();
    for rep in 0..cfg.reps {
        let set = OptikCacheList::new();
        w.initial_fill(cfg.seed + rep as u64, |k, v| set.insert(k, v));
        let res = run_set_workload(
            threads,
            cfg.duration,
            w,
            cfg.seed + rep as u64,
            false,
            |_| set.handle(),
        );
        mops.push(res.mops());
    }
    stats::median(&mops)
}

fn measure_lazy_cache(w: &Workload, threads: usize, cfg: &Config) -> f64 {
    let mut mops = Vec::new();
    for rep in 0..cfg.reps {
        let set = LazyCacheList::new();
        w.initial_fill(cfg.seed + rep as u64, |k, v| set.insert(k, v));
        let res = run_set_workload(
            threads,
            cfg.duration,
            w,
            cfg.seed + rep as u64,
            false,
            |_| set.handle(),
        );
        mops.push(res.mops());
    }
    stats::median(&mops)
}

fn main() {
    let cfg = Config::from_env();
    banner("Figure 9", "linked lists on five workloads", &cfg);

    let workloads: [(&str, u64, bool); 5] = [
        ("Large (8192 elements)", 8192, false),
        ("Medium (1024 elements)", 1024, false),
        ("Small (64 elements)", 64, false),
        ("Large skewed (8192 elements)", 8192, true),
        ("Small skewed (64 elements)", 64, true),
    ];

    for (label, size, skewed) in workloads {
        let w = Workload::paper(size, 20, skewed);
        println!("{label}, 20% effective updates — throughput (Mops/s):");
        let mut t = Table::new([
            "threads",
            "harris",
            "lazy",
            "lazy-cache",
            "mcs-gl-opt",
            "optik-gl",
            "optik",
            "optik-cache",
        ]);
        for &n in &cfg.threads {
            t.row([
                n.to_string(),
                fmt_mops(measure_plain(HarrisList::new, &w, n, &cfg)),
                fmt_mops(measure_plain(LazyList::new, &w, n, &cfg)),
                fmt_mops(measure_lazy_cache(&w, n, &cfg)),
                fmt_mops(measure_plain(GlobalLockList::new, &w, n, &cfg)),
                fmt_mops(measure_plain(
                    OptikGlList::<optik::OptikVersioned>::new,
                    &w,
                    n,
                    &cfg,
                )),
                fmt_mops(measure_plain(OptikList::new, &w, n, &cfg)),
                fmt_mops(measure_optik_cache(&w, n, &cfg)),
            ]);
        }
        t.print();
        println!();
    }
}
