//! Figure 12: throughput and latency distributions of queue algorithms.
//!
//! Queues start with 65536 elements; three workloads: decreasing size
//! (40% enqueue), stable (50%), increasing (60%). Algorithms: ms-lf,
//! ms-lb, optik0..optik3. Latency boxplots at ~10 threads.
//!
//! Paper shape: ms-lb flat/stable (MCS) but collapses at
//! multiprogramming; optik2 ≈ ms-lf; optik3 (victim queues) ~7% over
//! ms-lf overall, ~28% on the enqueue-heavy workload; optik0 suffers
//! under contention (blocking lock), optik1 between.
//!
//! Scenarios: `fig12.*` in the registry (`bench_all --list`).

fn main() {
    optik_bench::cli::run_family("fig12", "queues on three enqueue/dequeue mixes", true);
}
