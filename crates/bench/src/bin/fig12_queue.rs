//! Figure 12: throughput and latency distributions of queue algorithms.
//!
//! Queues start with 65536 elements; three workloads: decreasing size
//! (40% enqueue), stable (50%), increasing (60%). Algorithms: ms-lf,
//! ms-lb, optik0..optik3. Latency boxplots at 10 threads on the stable
//! workload.
//!
//! Paper shape: ms-lb flat/stable (MCS) but collapses at
//! multiprogramming; optik2 ≈ ms-lf; optik3 (victim queues) ~7% over
//! ms-lf overall, ~28% on the enqueue-heavy workload; optik0 suffers
//! under contention (blocking lock), optik1 between.

use optik_bench::{banner, fmt_percentiles, Config};
use optik_harness::runner::run_queue_workload;
use optik_harness::table::{fmt_mops, Table};
use optik_harness::{stats, ConcurrentQueue, OpKind};
use optik_queues::{MsLbQueue, MsLfQueue, OptikQueue0, OptikQueue1, OptikQueue2, VictimQueue};

const INITIAL: u64 = 65_536;

fn measure<Q: ConcurrentQueue>(
    make: impl Fn() -> Q,
    enqueue_pct: u32,
    threads: usize,
    cfg: &Config,
    latency: bool,
) -> (f64, optik_harness::LatencyRecorder) {
    let mut mops = Vec::new();
    let mut lat = optik_harness::LatencyRecorder::new();
    for rep in 0..cfg.reps {
        let q = make();
        for i in 0..INITIAL {
            q.enqueue(i);
        }
        let res = run_queue_workload(
            &q,
            threads,
            cfg.duration,
            enqueue_pct,
            cfg.seed + rep as u64,
            latency,
        );
        mops.push(res.mops());
        lat.merge(&res.latency);
    }
    (stats::median(&mops), lat)
}

fn main() {
    let cfg = Config::from_env();
    banner("Figure 12", "queues on three enqueue/dequeue mixes", &cfg);

    let workloads: [(&str, u32); 3] = [
        ("Decreasing size (40% enq / 60% deq)", 40),
        ("Stable size (50% enq / 50% deq)", 50),
        ("Increasing size (60% enq / 40% deq)", 60),
    ];

    for (label, enq) in workloads {
        println!("{label} — throughput (Mops/s):");
        let mut t = Table::new([
            "threads", "ms-lf", "ms-lb", "optik0", "optik1", "optik2", "optik3",
        ]);
        for &n in &cfg.threads {
            t.row([
                n.to_string(),
                fmt_mops(measure(MsLfQueue::new, enq, n, &cfg, false).0),
                fmt_mops(measure(MsLbQueue::new, enq, n, &cfg, false).0),
                fmt_mops(measure(OptikQueue0::new, enq, n, &cfg, false).0),
                fmt_mops(measure(OptikQueue1::new, enq, n, &cfg, false).0),
                fmt_mops(measure(OptikQueue2::new, enq, n, &cfg, false).0),
                fmt_mops(measure(VictimQueue::new, enq, n, &cfg, false).0),
            ]);
        }
        t.print();
        println!();
    }

    // Latency distributions at ~10 threads, stable-size workload.
    let lat_threads = cfg
        .threads
        .iter()
        .copied()
        .min_by_key(|&t| t.abs_diff(10))
        .unwrap_or(10);
    println!("Latency at {lat_threads} threads, stable size (cycles, p5/p25/p50/p75/p95):");
    let mut t = Table::new(["queue", "enqueue", "dequeue"]);
    let mut lat_row = |name: &str, lat: optik_harness::LatencyRecorder| {
        let enq = lat
            .percentiles(OpKind::InsertSuc)
            .map(|p| fmt_percentiles(&p))
            .unwrap_or_else(|| "-".into());
        let deq = lat
            .percentiles(OpKind::DeleteSuc)
            .map(|p| fmt_percentiles(&p))
            .unwrap_or_else(|| "-".into());
        t.row([name.to_string(), enq, deq]);
    };
    lat_row(
        "ms-lf",
        measure(MsLfQueue::new, 50, lat_threads, &cfg, true).1,
    );
    lat_row(
        "ms-lb",
        measure(MsLbQueue::new, 50, lat_threads, &cfg, true).1,
    );
    lat_row(
        "optik0",
        measure(OptikQueue0::new, 50, lat_threads, &cfg, true).1,
    );
    lat_row(
        "optik1",
        measure(OptikQueue1::new, 50, lat_threads, &cfg, true).1,
    );
    lat_row(
        "optik2",
        measure(OptikQueue2::new, 50, lat_threads, &cfg, true).1,
    );
    lat_row(
        "optik3",
        measure(VictimQueue::new, 50, lat_threads, &cfg, true).1,
    );
    t.print();
}
