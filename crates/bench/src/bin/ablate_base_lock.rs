//! Ablation: versioned vs ticket OPTIK locks as the base of a structure.
//!
//! Figure 5 shows the two lock implementations behave identically on a raw
//! lock; this checks the claim holds inside a real structure (the
//! global-lock OPTIK list, i.e. one contended OPTIK lock).
//!
//! Scenarios: `ablate-base-lock.*` in the registry (`bench_all --list`).

use optik_bench::cli;

fn main() {
    let reports = cli::run_family(
        "ablate-base-lock",
        "optik-gl list: versioned vs ticket base lock (small list, 20% updates)",
        false,
    );
    if let Some(t) = cli::ratio_table(&reports, "ablate-base-lock", "ticket", "versioned") {
        println!("ablate-base-lock — ticket vs versioned:");
        t.print();
    }
}
