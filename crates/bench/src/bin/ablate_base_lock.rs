//! Ablation: versioned vs ticket OPTIK locks as the base of a structure.
//!
//! Figure 5 shows the two lock implementations behave identically on a raw
//! lock; this checks the claim holds inside a real structure (the
//! global-lock OPTIK list, i.e. one contended OPTIK lock).

use optik::{OptikTicket, OptikVersioned};
use optik_bench::{banner, Config};
use optik_harness::runner::run_set_workload;
use optik_harness::table::{fmt_mops, Table};
use optik_harness::{stats, ConcurrentSet, Workload};
use optik_lists::OptikGlList;

fn measure<S: ConcurrentSet>(
    make: impl Fn() -> S,
    w: &Workload,
    threads: usize,
    cfg: &Config,
) -> f64 {
    let mut mops = Vec::new();
    for rep in 0..cfg.reps {
        let set = make();
        w.initial_fill(cfg.seed + rep as u64, |k, v| set.insert(k, v));
        mops.push(
            run_set_workload(
                threads,
                cfg.duration,
                w,
                cfg.seed + rep as u64,
                false,
                |_| &set,
            )
            .mops(),
        );
    }
    stats::median(&mops)
}

fn main() {
    let cfg = Config::from_env();
    banner(
        "Ablation",
        "optik-gl list: versioned vs ticket base lock (small list, 20% updates)",
        &cfg,
    );
    let w = Workload::paper(128, 20, false);
    let mut t = Table::new(["threads", "versioned", "ticket", "ticket/versioned"]);
    for &n in &cfg.threads {
        let v = measure(OptikGlList::<OptikVersioned>::new, &w, n, &cfg);
        let k = measure(OptikGlList::<OptikTicket>::new, &w, n, &cfg);
        t.row([
            n.to_string(),
            fmt_mops(v),
            fmt_mops(k),
            format!("{:.2}x", k / v.max(1e-9)),
        ]);
    }
    t.print();
}
