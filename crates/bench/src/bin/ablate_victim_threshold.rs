//! Ablation: the victim-queue threshold (§5.4).
//!
//! The paper diverts enqueues to the victim queue when "more than two"
//! threads queue behind the tail lock. This sweep shows the sensitivity of
//! that choice on the enqueue-heavy workload (60% enqueues), where victim
//! queues matter most.

use optik_bench::{banner, Config};
use optik_harness::runner::run_queue_workload;
use optik_harness::table::{fmt_mops, Table};
use optik_harness::{stats, ConcurrentQueue};
use optik_queues::VictimQueue;

fn measure(threshold: u32, threads: usize, cfg: &Config) -> f64 {
    let mut mops = Vec::new();
    for rep in 0..cfg.reps {
        let q = VictimQueue::with_threshold(threshold);
        for i in 0..65_536u64 {
            q.enqueue(i);
        }
        let res = run_queue_workload(&q, threads, cfg.duration, 60, cfg.seed + rep as u64, false);
        mops.push(res.mops());
    }
    stats::median(&mops)
}

fn main() {
    let cfg = Config::from_env();
    banner(
        "Ablation",
        "victim-queue threshold sweep (increasing-size workload)",
        &cfg,
    );
    let thresholds = [0u32, 1, 2, 4, 8, 16, u32::MAX];
    let mut t = Table::new([
        "threads", "t=0", "t=1", "t=2*", "t=4", "t=8", "t=16", "t=inf",
    ]);
    for &n in &cfg.threads {
        let mut row = vec![n.to_string()];
        for &th in &thresholds {
            row.push(fmt_mops(measure(th, n, &cfg)));
        }
        t.row(row);
    }
    t.print();
    println!("(* = the paper's choice; t=inf disables the victim queue)");
}
