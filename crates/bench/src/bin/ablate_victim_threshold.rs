//! Ablation: the victim-queue threshold (§5.4).
//!
//! The paper diverts enqueues to the victim queue when "more than two"
//! threads queue behind the tail lock. This sweep shows the sensitivity of
//! that choice on the enqueue-heavy workload (60% enqueues), where victim
//! queues matter most. `t2` is the paper's choice; `tinf` disables the
//! victim queue entirely.
//!
//! Scenarios: `ablate-victim.*` in the registry (`bench_all --list`).

fn main() {
    optik_bench::cli::run_family(
        "ablate-victim",
        "victim-queue threshold sweep (increasing-size workload)",
        false,
    );
}
