//! Figure 10: throughput of hash-table algorithms.
//!
//! Workloads (20% effective updates; buckets == initial elements):
//! medium (8192) and small-skewed (512, zipf a=0.9).
//! Algorithms: lazy-gl, java, java-optik, optik, optik-gl, optik-map.
//!
//! Paper shape: optik-gl fastest overall (~2× lazy-gl on average, 3.7× on
//! small-skewed); optik ~9% behind optik-gl; java-optik helps only under
//! contention; optik-map wins once tables are large enough (its small-table
//! pathology was a Xeon prefetcher artifact).

use optik_bench::{banner, Config};
use optik_harness::runner::run_set_workload;
use optik_harness::table::{fmt_mops, Table};
use optik_harness::{stats, ConcurrentSet, Workload};
use optik_hashtables::{
    LazyGlHashTable, OptikGlHashTable, OptikHashTable, OptikMapHashTable, StripedHashTable,
    StripedOptikHashTable,
};

fn measure<S: ConcurrentSet>(
    make: impl Fn() -> S,
    w: &Workload,
    threads: usize,
    cfg: &Config,
) -> f64 {
    let mut mops = Vec::new();
    for rep in 0..cfg.reps {
        let set = make();
        w.initial_fill(cfg.seed + rep as u64, |k, v| set.insert(k, v));
        let res = run_set_workload(
            threads,
            cfg.duration,
            w,
            cfg.seed + rep as u64,
            false,
            |_| &set,
        );
        mops.push(res.mops());
    }
    stats::median(&mops)
}

fn main() {
    let cfg = Config::from_env();
    banner("Figure 10", "hash tables on two workloads", &cfg);

    let workloads: [(&str, u64, bool); 2] = [
        ("Medium (8192 elements)", 8192, false),
        ("Small skewed (512 elements)", 512, true),
    ];

    for (label, size, skewed) in workloads {
        let w = Workload::paper(size, 20, skewed);
        let buckets = size as usize; // paper: one element per bucket
        println!("{label}, 20% effective updates, {buckets} buckets — throughput (Mops/s):");
        let mut t = Table::new([
            "threads",
            "lazy-gl",
            "java",
            "java-optik",
            "optik",
            "optik-gl",
            "optik-map",
        ]);
        for &n in &cfg.threads {
            t.row([
                n.to_string(),
                fmt_mops(measure(|| LazyGlHashTable::new(buckets), &w, n, &cfg)),
                fmt_mops(measure(
                    || StripedHashTable::with_default_segments(buckets),
                    &w,
                    n,
                    &cfg,
                )),
                fmt_mops(measure(
                    || StripedOptikHashTable::with_default_segments(buckets),
                    &w,
                    n,
                    &cfg,
                )),
                fmt_mops(measure(|| OptikHashTable::new(buckets), &w, n, &cfg)),
                fmt_mops(measure(|| OptikGlHashTable::new(buckets), &w, n, &cfg)),
                fmt_mops(measure(
                    // Bucket capacity 8 keeps overflow probability negligible
                    // at load factor 1 while preserving the contiguous layout.
                    || OptikMapHashTable::with_bucket_capacity(buckets, 8),
                    &w,
                    n,
                    &cfg,
                )),
            ]);
        }
        t.print();
        println!();
    }
}
