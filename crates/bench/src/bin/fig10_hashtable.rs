//! Figure 10: throughput of hash-table algorithms.
//!
//! Workloads (20% effective updates; buckets == initial elements):
//! medium (8192) and small-skewed (512, zipf a=0.9).
//! Algorithms: lazy-gl, java, java-optik, optik, optik-gl, optik-map.
//!
//! Paper shape: optik-gl fastest overall (~2× lazy-gl on average, 3.7× on
//! small-skewed); optik ~9% behind optik-gl; java-optik helps only under
//! contention; optik-map wins once tables are large enough (its small-table
//! pathology was a Xeon prefetcher artifact).
//!
//! Scenarios: `fig10.*` in the registry (`bench_all --list`).

fn main() {
    optik_bench::cli::run_family("fig10", "hash tables on two workloads", false);
}
