//! Extension experiment: external BSTs built with the OPTIK pattern.
//!
//! Not a paper figure — the paper's related work points at BST-TK as "the
//! OPTIK pattern in a tree"; this regenerator shows the same ladder the
//! paper climbs for lists (global lock → global OPTIK lock → fine-grained
//! OPTIK) reproduced on binary search trees:
//!
//! - *mcs-gl*: every update serializes behind an MCS lock;
//! - *optik-gl*: infeasible updates never lock; feasible ones validate a
//!   single global version — wins while update *commits* are rare;
//! - *optik-tk*: per-router OPTIK locks — disjoint updates commit in
//!   parallel, so it scales where the global versions saturate.
//!
//! Expected shape: on trees large enough for traversals to dominate, all
//! three are close at 1 thread; as threads grow, optik-tk pulls ahead of
//! optik-gl, which pulls ahead of mcs-gl; skew compresses optik-tk's lead
//! (hot routers), mirroring the paper's list results.

use optik_bench::{banner, Config};
use optik_bsts::{GlobalLockBst, OptikBst, OptikGlBst};
use optik_harness::runner::run_set_workload;
use optik_harness::table::{fmt_mops, Table};
use optik_harness::{stats, ConcurrentSet, Workload};

fn measure<S: ConcurrentSet>(
    make: impl Fn() -> S,
    w: &Workload,
    threads: usize,
    cfg: &Config,
) -> f64 {
    let mut mops = Vec::new();
    for rep in 0..cfg.reps {
        let set = make();
        w.initial_fill(cfg.seed + rep as u64, |k, v| set.insert(k, v));
        let res = run_set_workload(
            threads,
            cfg.duration,
            w,
            cfg.seed + rep as u64,
            false,
            |_| &set,
        );
        mops.push(res.mops());
    }
    stats::median(&mops)
}

fn main() {
    let cfg = Config::from_env();
    banner(
        "Extension: BSTs",
        "external binary search trees with OPTIK",
        &cfg,
    );

    let workloads: [(&str, u64, bool); 4] = [
        ("Large (16384 elements)", 16384, false),
        ("Medium (2048 elements)", 2048, false),
        ("Small (128 elements)", 128, false),
        ("Small skewed (128 elements)", 128, true),
    ];

    for (label, size, skewed) in workloads {
        let w = Workload::paper(size, 20, skewed);
        println!("{label}, 20% effective updates — throughput (Mops/s):");
        let mut t = Table::new(["threads", "mcs-gl", "optik-gl", "optik-tk"]);
        for &n in &cfg.threads {
            t.row([
                n.to_string(),
                fmt_mops(measure(GlobalLockBst::new, &w, n, &cfg)),
                fmt_mops(measure(
                    OptikGlBst::<optik::OptikVersioned>::new,
                    &w,
                    n,
                    &cfg,
                )),
                fmt_mops(measure(OptikBst::new, &w, n, &cfg)),
            ]);
        }
        t.print();
        println!();
    }
}
