//! Extension experiment: external BSTs built with the OPTIK pattern.
//!
//! Not a paper figure — the paper's related work points at BST-TK as "the
//! OPTIK pattern in a tree"; this regenerator shows the same ladder the
//! paper climbs for lists (global lock → global OPTIK lock → fine-grained
//! OPTIK) reproduced on binary search trees:
//!
//! - *mcs-gl*: every update serializes behind an MCS lock;
//! - *optik-gl*: infeasible updates never lock; feasible ones validate a
//!   single global version — wins while update *commits* are rare;
//! - *optik-tk*: per-router OPTIK locks — disjoint updates commit in
//!   parallel, so it scales where the global versions saturate.
//!
//! Expected shape: on trees large enough for traversals to dominate, all
//! three are close at 1 thread; as threads grow, optik-tk pulls ahead of
//! optik-gl, which pulls ahead of mcs-gl; skew compresses optik-tk's lead
//! (hot routers), mirroring the paper's list results.
//!
//! Scenarios: `bst.*` in the registry (`bench_all --list`).

fn main() {
    optik_bench::cli::run_family("bst", "external binary search trees with OPTIK", false);
}
