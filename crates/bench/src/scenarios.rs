//! The canonical scenario registry: every figure and ablation of the
//! reproduction, registered once.
//!
//! This is the single place where a data structure meets the paper's §5
//! methodology. Registering a scenario here automatically gets it
//!
//! - benchmarked by its family binary (`fig9_list`, ...) and by
//!   `bench_all` (with JSON reports and baseline comparison), and
//! - stress-tested and linearizability-checked by the registry-driven test
//!   tiers in `tests/` (via [`Scenario::subject`]).
//!
//! Scenario names follow `family.group.series` (see
//! [`optik_harness::scenario`]); [`group_blurb`] carries the human table
//! headers the old per-figure binaries printed.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use reclaim::NodePool;

use optik::{OptikLock, OptikTicket, OptikVersioned, ValidatedLock};
use optik_harness::api::OrderedMap;
use optik_harness::runner::{run_set_workload, run_workers};
use optik_harness::scenario::{Measurement, Registry, Scenario, Subject};
use optik_harness::{ConcurrentSet, FastRng, SetHandle, Workload};

use optik_bsts::{GlobalLockBst, OptikBst, OptikGlBst};
use optik_hashtables::{
    LazyGlHashTable, OptikGlHashTable, OptikHashTable, OptikMapHashTable,
    ResizableStripedHashTable, StripedHashTable, StripedOptikHashTable,
};
use optik_kv::{
    run_kv_workload, run_kv_workload_ordered, CombineMode, KvMix, KvStore, KvWorkload, SystemClock,
};
use optik_lists::{
    GlobalLockList, HarrisList, LazyCacheList, LazyList, OptikCacheList, OptikGlList, OptikList,
};
use optik_maps::{LockArrayMap, OptikArrayMap};
use optik_queues::{MsLbQueue, MsLfQueue, OptikQueue0, OptikQueue1, OptikQueue2, VictimQueue};
use optik_skiplists::{
    FraserSkipList, HerlihyOptikSkipList, HerlihySkipList, OptikSkipList1, OptikSkipList2,
};
use optik_stacks::{EliminationStack, OptikStack, TreiberStack};

/// Builds the full registry (~157 scenarios across 16 families).
pub fn registry() -> Registry {
    let mut r = Registry::new();
    fig5(&mut r);
    fig7(&mut r);
    fig9(&mut r);
    fig10(&mut r);
    fig11(&mut r);
    fig12(&mut r);
    bst(&mut r);
    stacks(&mut r);
    alloc(&mut r);
    kv(&mut r);
    kv_hotkey(&mut r);
    combine_overhead(&mut r);
    kv_range(&mut r);
    kv_ttl(&mut r);
    kv_rebalance(&mut r);
    map_ordered(&mut r);
    probe_overhead(&mut r);
    ablate_base_lock(&mut r);
    ablate_node_cache(&mut r);
    ablate_resize(&mut r);
    ablate_victim(&mut r);
    r
}

/// Human description of a group (the table headers the per-figure binaries
/// print above each thread sweep).
pub fn group_blurb(group: &str) -> &'static str {
    match group {
        "fig5" => "validated lock acquisitions: ttas vs optik-ticket vs optik-versioned",
        "fig7.small" => "Small map (4 slots), 10% effective updates",
        "fig7.large" => "Large map (1024 slots), 10% effective updates",
        "fig9.large" => "Large list (8192 elements), 20% effective updates",
        "fig9.medium" => "Medium list (1024 elements), 20% effective updates",
        "fig9.small" => "Small list (64 elements), 20% effective updates",
        "fig9.large-skew" => "Large skewed list (8192 elements, zipf a=0.9), 20% effective updates",
        "fig9.small-skew" => "Small skewed list (64 elements, zipf a=0.9), 20% effective updates",
        "fig10.medium" => "Medium table (8192 elements, 8192 buckets), 20% effective updates",
        "fig10.small-skew" => {
            "Small skewed table (512 elements, 512 buckets, zipf a=0.9), 20% effective updates"
        }
        "fig11.large-skew" => {
            "Large skewed skip list (65536 elements, zipf a=0.9), 20% effective updates"
        }
        "fig11.small-skew" => {
            "Small skewed skip list (1024 elements, zipf a=0.9), 20% effective updates"
        }
        "fig12.dec" => "Decreasing size (40% enq / 60% deq), 65536 initial elements",
        "fig12.stable" => "Stable size (50% enq / 50% deq), 65536 initial elements",
        "fig12.inc" => "Increasing size (60% enq / 40% deq), 65536 initial elements",
        "bst.large" => "Large BST (16384 elements), 20% effective updates",
        "bst.medium" => "Medium BST (2048 elements), 20% effective updates",
        "bst.small" => "Small BST (128 elements), 20% effective updates",
        "bst.small-skew" => "Small skewed BST (128 elements, zipf a=0.9), 20% effective updates",
        "stacks" => "Treiber vs OPTIK vs elimination stack (50/50 push/pop, 1024 prefill)",
        "alloc.churn" => {
            "Allocation churn, thread-private recirculation (alloc -> publish -> retire; \
             pool magazines vs boxed malloc/free)"
        }
        "alloc.xthread" => {
            "Allocation churn, cross-thread recirculation (threads displace each other's \
             nodes; retired slots flow through the depot)"
        }
        "alloc.arena" => {
            "Arena-backed pool twins of alloc.churn.pool / alloc.xthread.pool (aligned \
             type-stable slabs; the depot sorts returned slots so magazine refills are \
             address-clustered runs); A/B against the magazine pool with --ab"
        }
        "kv.read-heavy" => {
            "kv store, read-heavy (8192 entries, zipf a=0.9, 90% get / 5% put / 5% remove, 8 shards)"
        }
        "kv.write-heavy" => {
            "kv store, write-heavy (8192 entries, uniform, 40% get / 30% put / 30% remove, 8 \
             shards); per-shard op counters are `CachePadded` since the combining PR — \
             single-thread rows unchanged within box noise (padding pays only under \
             cross-core false sharing, absent on the 1-core baseline host)"
        }
        "kv.batch" => {
            "kv store, batched (8192 entries, uniform, 25% multi-get + 25% batched writes of 8 keys, 8 shards)"
        }
        "kv.scan" => {
            "kv store with snapshot scans (1024 entries, zipf a=0.9, 1% scans + 20% updates, 8 shards)"
        }
        "kv.small" => {
            "kv store, small + read-heavy (256 entries, 16 shards): array-map shards vs bucketed"
        }
        "kv.multiget" => {
            "kv multi-get heavy (8192 entries, uniform, 50% 16-key multi-gets + 10% writes, \
             8 shards): shard-grouped multi_get (route once, one validated OPTIK window per \
             involved shard, allocation-free planning) vs `-perkey` re-route-every-key \
             twins (A/B with --ab)"
        }
        "kv.shards" => {
            "kv shard-count ablation (striped-optik backend, read-heavy zipf, 1..32 shards)"
        }
        "kv.hotkey.s099" => {
            "kv hot-key skew (8192 entries, zipf a=0.99, 40% get / 30% put / 30% remove, \
             8 shards): flat-combining vs `-nofc` combining-off twins. On the 1-core \
             baseline host the twins are parity-within-noise at every thread count \
             (a single core cannot produce the parallel lock-line contention combining \
             targets); the probe tier shows the mechanism engaging under convoys \
             (mean drain batch ~5-6 ops at 8 oversubscribed threads)"
        }
        "kv.hotkey.s120" => {
            "kv hot-key skew, extreme (8192 entries, zipf a=1.2, 40% get / 30% put / 30% \
             remove, 8 shards): flat-combining vs `-nofc` combining-off twins (see \
             kv.hotkey.s099 for the 1-core-host parity caveat)"
        }
        "combine.overhead" => {
            "Flat-combining mount overhead A/B: uniform write-heavy runs, `bare` \
             (combining off) vs `engaged` (adaptive mount, never engaging); equal \
             throughput is the free-uncontended-path check (measured: engaged/bare \
             0.98x median of 3 interleaved single-thread runs on the baseline host, \
             inside its ±30% run-to-run noise)"
        }
        "kv.range" => {
            "kv range scans over ordered-sharded skiplist/BST shards (8192 entries, 5% 128-key \
             windows + 20% updates, 8 contiguous partitions)"
        }
        "kv.ttl" => {
            "kv store with native TTL (8192 entries, 15% 30ms-TTL puts + 10% updates + 1% \
             expiry sweeps, wall-clock ticks, 8 shards)"
        }
        "kv.rebalance" => {
            "kv online range-partition rebalancing (8192 entries, zipf a=0.9 over contiguous \
             partitions, 3% 128-key windows + 20% updates + 0.2% rebalance rounds, 8 shards)"
        }
        "map.ordered" => {
            "Ordered backends as value-carrying maps (1024 entries, zipf): 20% in-place \
             upserts/removes, 2% validated 64-key range scans"
        }
        "probe.overhead" => {
            "Probe hook-site overhead A/B: identical validated-acquisition loops, \
             `bare` with only the built-in hooks vs `hooked` with extra explicit \
             probe calls per op (equal throughput in a probe-disabled build is \
             the zero-cost check)"
        }
        "ablate-base-lock" => {
            "optik-gl list: versioned vs ticket base lock (128 elements, 20% updates)"
        }
        "ablate-node-cache.64" => "Node caching on the small list (64 elements, 20% updates)",
        "ablate-node-cache.1024" => "Node caching on the medium list (1024 elements, 20% updates)",
        "ablate-node-cache.8192" => "Node caching on the large list (8192 elements, 20% updates)",
        "ablate-resize" => {
            "Fixed vs per-segment-resizable striped tables (8192 elements, 20% updates)"
        }
        "ablate-victim" => "Victim-queue threshold sweep (60% enqueues, 65536 initial elements)",
        _ => "",
    }
}

// ---------------------------------------------------------------------------
// Figure 5: raw validated lock acquisitions.
// ---------------------------------------------------------------------------

fn optik_lock_scenario<L: OptikLock + 'static>(name: &str, about: &str, id: &str) -> Scenario {
    Scenario::custom(name, about, id, Subject::None, |spec| {
        let lock = L::default();
        let start = Instant::now();
        let results = run_workers(spec.threads, spec.duration, |ctx| {
            let mut ops = 0u64;
            let mut cas = 0u64;
            while !ctx.should_stop() {
                loop {
                    let v = lock.get_version();
                    if L::is_locked_version(v) {
                        synchro::relax();
                        continue;
                    }
                    let (ok, c) = lock.try_lock_version_counting(v);
                    cas += u64::from(c);
                    if ok {
                        lock.unlock();
                        break;
                    }
                }
                ops += 1;
            }
            (ops, cas)
        });
        let wall = start.elapsed();
        let ops: u64 = results.iter().map(|r| r.0).sum();
        let cas: u64 = results.iter().map(|r| r.1).sum();
        Measurement::from_ops(ops, wall)
            .with_extra("cas_per_validation", cas as f64 / ops.max(1) as f64)
    })
}

fn fig5(r: &mut Registry) {
    let about = "Fig 5: one validated acquisition per op; both OPTIK locks are \
                 identical and >10x the TTAS+version straw man under contention";
    r.register(Scenario::custom(
        "fig5.ttas",
        about,
        "lock/ttas",
        Subject::None,
        |spec| {
            let lock = ValidatedLock::new();
            let start = Instant::now();
            let results = run_workers(spec.threads, spec.duration, |ctx| {
                let mut ops = 0u64;
                let mut cas = 0u64;
                while !ctx.should_stop() {
                    loop {
                        let v = lock.get_version();
                        let (ok, c) = lock.lock_and_validate_counting(v);
                        cas += u64::from(c);
                        if ok {
                            lock.commit_unlock();
                            break;
                        }
                    }
                    ops += 1;
                }
                (ops, cas)
            });
            let wall = start.elapsed();
            let ops: u64 = results.iter().map(|r| r.0).sum();
            let cas: u64 = results.iter().map(|r| r.1).sum();
            Measurement::from_ops(ops, wall)
                .with_extra("cas_per_validation", cas as f64 / ops.max(1) as f64)
        },
    ));
    r.register(optik_lock_scenario::<OptikTicket>(
        "fig5.optik-ticket",
        about,
        "lock/optik-ticket",
    ));
    r.register(optik_lock_scenario::<OptikVersioned>(
        "fig5.optik-versioned",
        about,
        "lock/optik-versioned",
    ));
}

// ---------------------------------------------------------------------------
// Figure 7: array maps.
// ---------------------------------------------------------------------------

fn fig7(r: &mut Registry) {
    for (suffix, slots) in [("small", 4u64), ("large", 1024)] {
        let w = Workload::paper(slots, 10, false);
        r.register(Scenario::set(
            &format!("fig7.{suffix}.mcs"),
            "Fig 7: every operation behind a global MCS lock (paper baseline)",
            "map/mcs",
            w.clone(),
            move || LockArrayMap::new(slots as usize),
        ));
        r.register(Scenario::set(
            &format!("fig7.{suffix}.optik"),
            "Fig 7: OPTIK map — lock-free searches, unsynchronized infeasible \
             updates; ~4.7x mcs on the small map, ~1.4x on the large",
            "map/optik",
            w,
            move || OptikArrayMap::<OptikVersioned>::new(slots as usize),
        ));
    }
}

// ---------------------------------------------------------------------------
// Figure 9: linked lists.
// ---------------------------------------------------------------------------

/// Node-caching list scenario (per-thread handles hold the cache).
fn optik_cache_scenario(name: &str, about: &str, w: Workload) -> Scenario {
    Scenario::custom(
        name,
        about,
        "list/optik-cache",
        Subject::set(OptikCacheList::new),
        move |spec| {
            let set = OptikCacheList::new();
            w.initial_fill(spec.seed, |k, v| set.insert(k, v));
            run_set_workload(
                spec.threads,
                spec.duration,
                &w,
                spec.seed,
                spec.record_latency,
                |_| set.handle(),
            )
            .into()
        },
    )
}

fn lazy_cache_scenario(name: &str, about: &str, w: Workload) -> Scenario {
    Scenario::custom(
        name,
        about,
        "list/lazy-cache",
        Subject::set(LazyCacheList::new),
        move |spec| {
            let set = LazyCacheList::new();
            w.initial_fill(spec.seed, |k, v| set.insert(k, v));
            run_set_workload(
                spec.threads,
                spec.duration,
                &w,
                spec.seed,
                spec.record_latency,
                |_| set.handle(),
            )
            .into()
        },
    )
}

fn fig9(r: &mut Registry) {
    let about = "Fig 9: node caching helps (~50%/15% on large/small); optik-gl > \
                 mcs-gl-opt everywhere; fine-grained optik ~= lazy/harris at low \
                 contention and ahead of lazy on small/skewed lists";
    for (suffix, size, skewed) in [
        ("large", 8192u64, false),
        ("medium", 1024, false),
        ("small", 64, false),
        ("large-skew", 8192, true),
        ("small-skew", 64, true),
    ] {
        let w = Workload::paper(size, 20, skewed);
        let name = |series: &str| format!("fig9.{suffix}.{series}");
        r.register(Scenario::set(
            &name("harris"),
            about,
            "list/harris",
            w.clone(),
            HarrisList::new,
        ));
        r.register(Scenario::set(
            &name("lazy"),
            about,
            "list/lazy",
            w.clone(),
            LazyList::new,
        ));
        r.register(lazy_cache_scenario(&name("lazy-cache"), about, w.clone()));
        r.register(Scenario::set(
            &name("mcs-gl-opt"),
            about,
            "list/mcs-gl-opt",
            w.clone(),
            GlobalLockList::new,
        ));
        r.register(Scenario::set(
            &name("optik-gl"),
            about,
            "list/optik-gl",
            w.clone(),
            OptikGlList::<OptikVersioned>::new,
        ));
        r.register(Scenario::set(
            &name("optik"),
            about,
            "list/optik",
            w.clone(),
            OptikList::new,
        ));
        r.register(optik_cache_scenario(&name("optik-cache"), about, w));
    }
}

// ---------------------------------------------------------------------------
// Figure 10: hash tables.
// ---------------------------------------------------------------------------

fn fig10(r: &mut Registry) {
    let about = "Fig 10: optik-gl fastest overall (~2x lazy-gl, 3.7x on \
                 small-skewed); optik ~9% behind optik-gl; java-optik helps only \
                 under contention; optik-map wins once tables are large";
    for (suffix, size, skewed) in [("medium", 8192u64, false), ("small-skew", 512, true)] {
        let w = Workload::paper(size, 20, skewed);
        let buckets = size as usize; // paper: one element per bucket
        let name = |series: &str| format!("fig10.{suffix}.{series}");
        r.register(Scenario::set(
            &name("lazy-gl"),
            about,
            "ht/lazy-gl",
            w.clone(),
            move || LazyGlHashTable::new(buckets),
        ));
        r.register(Scenario::set(
            &name("java"),
            about,
            "ht/java",
            w.clone(),
            move || StripedHashTable::with_default_segments(buckets),
        ));
        r.register(Scenario::set(
            &name("java-optik"),
            about,
            "ht/java-optik",
            w.clone(),
            move || StripedOptikHashTable::with_default_segments(buckets),
        ));
        r.register(Scenario::set(
            &name("optik"),
            about,
            "ht/optik",
            w.clone(),
            move || OptikHashTable::new(buckets),
        ));
        r.register(Scenario::set(
            &name("optik-gl"),
            about,
            "ht/optik-gl",
            w.clone(),
            move || OptikGlHashTable::new(buckets),
        ));
        // Arena twins of the two pool-heavy columns: the same tables with
        // their shared node pool mounted in arena mode. A/B against the
        // magazine-pool columns with e.g.
        //   bench_all --ab fig10.medium.optik-gl,fig10.medium.optik-gl-arena
        r.register(Scenario::set(
            &name("optik-gl-arena"),
            about,
            "ht/optik-gl-arena",
            w.clone(),
            move || OptikGlHashTable::arena(buckets),
        ));
        r.register(Scenario::set(
            &name("java-optik-arena"),
            about,
            "ht/java-optik-arena",
            w.clone(),
            move || StripedOptikHashTable::arena(buckets, optik_hashtables::DEFAULT_SEGMENTS),
        ));
        r.register(Scenario::set(
            &name("optik-map"),
            about,
            "ht/optik-map",
            w,
            // Bucket capacity 8 keeps overflow probability negligible at
            // load factor 1 while preserving the contiguous layout.
            move || OptikMapHashTable::with_bucket_capacity(buckets, 8),
        ));
    }
}

// ---------------------------------------------------------------------------
// Figure 11: skip lists.
// ---------------------------------------------------------------------------

fn fig11(r: &mut Registry) {
    let about = "Fig 11: all ~equal at low contention; herl-optik >= herlihy \
                 (fewer restarts); optik2 > optik1 under skew and ~10% over \
                 fraser at peak, but drops under multiprogramming";
    for (suffix, size) in [("large-skew", 65536u64), ("small-skew", 1024)] {
        let w = Workload::paper(size, 20, true);
        let name = |series: &str| format!("fig11.{suffix}.{series}");
        r.register(Scenario::set(
            &name("fraser"),
            about,
            "sl/fraser",
            w.clone(),
            FraserSkipList::new,
        ));
        r.register(Scenario::set(
            &name("herlihy"),
            about,
            "sl/herlihy",
            w.clone(),
            HerlihySkipList::new,
        ));
        r.register(Scenario::set(
            &name("herl-optik"),
            about,
            "sl/herl-optik",
            w.clone(),
            HerlihyOptikSkipList::new,
        ));
        r.register(Scenario::set(
            &name("optik1"),
            about,
            "sl/optik1",
            w.clone(),
            OptikSkipList1::new,
        ));
        r.register(Scenario::set(
            &name("optik2"),
            about,
            "sl/optik2",
            w,
            OptikSkipList2::new,
        ));
    }
}

// ---------------------------------------------------------------------------
// Figure 12: queues.
// ---------------------------------------------------------------------------

/// Queues start with 65536 elements (the paper's Figure 12 setup).
pub const QUEUE_PREFILL: u64 = 65_536;

fn fig12(r: &mut Registry) {
    let about = "Fig 12: ms-lb flat/stable (MCS) but collapses at \
                 multiprogramming; optik2 ~= ms-lf; optik3 (victim queues) ~7% \
                 over ms-lf overall, ~28% on the enqueue-heavy workload";
    for (suffix, enq) in [("dec", 40u32), ("stable", 50), ("inc", 60)] {
        let name = |series: &str| format!("fig12.{suffix}.{series}");
        r.register(Scenario::queue(
            &name("ms-lf"),
            about,
            "queue/ms-lf",
            QUEUE_PREFILL,
            enq,
            MsLfQueue::new,
        ));
        r.register(Scenario::queue(
            &name("ms-lb"),
            about,
            "queue/ms-lb",
            QUEUE_PREFILL,
            enq,
            MsLbQueue::new,
        ));
        r.register(Scenario::queue(
            &name("optik0"),
            about,
            "queue/optik0",
            QUEUE_PREFILL,
            enq,
            OptikQueue0::new,
        ));
        r.register(Scenario::queue(
            &name("optik1"),
            about,
            "queue/optik1",
            QUEUE_PREFILL,
            enq,
            OptikQueue1::new,
        ));
        r.register(Scenario::queue(
            &name("optik2"),
            about,
            "queue/optik2",
            QUEUE_PREFILL,
            enq,
            OptikQueue2::new,
        ));
        r.register(Scenario::queue(
            &name("optik3"),
            about,
            "queue/optik3",
            QUEUE_PREFILL,
            enq,
            VictimQueue::new,
        ));
    }
}

// ---------------------------------------------------------------------------
// Extension: external BSTs.
// ---------------------------------------------------------------------------

fn bst(r: &mut Registry) {
    let about = "Extension: the list ladder (global lock -> global OPTIK -> \
                 fine-grained OPTIK) reproduced on external BSTs; optik-tk \
                 pulls ahead as threads grow, skew compresses its lead";
    for (suffix, size, skewed) in [
        ("large", 16384u64, false),
        ("medium", 2048, false),
        ("small", 128, false),
        ("small-skew", 128, true),
    ] {
        let w = Workload::paper(size, 20, skewed);
        let name = |series: &str| format!("bst.{suffix}.{series}");
        r.register(Scenario::set(
            &name("mcs-gl"),
            about,
            "bst/mcs-gl",
            w.clone(),
            GlobalLockBst::new,
        ));
        r.register(Scenario::set(
            &name("optik-gl"),
            about,
            "bst/optik-gl",
            w.clone(),
            OptikGlBst::<OptikVersioned>::new,
        ));
        r.register(Scenario::set(
            &name("optik-tk"),
            about,
            "bst/optik-tk",
            w,
            OptikBst::new,
        ));
    }
}

// ---------------------------------------------------------------------------
// §5.5: stacks.
// ---------------------------------------------------------------------------

fn stacks(r: &mut Registry) {
    let about = "S5.5: the stack's single point of contention offers no \
                 optimistic prefix — Treiber and OPTIK variants behave alike";
    r.register(Scenario::stack(
        "stacks.treiber",
        about,
        "stack/treiber",
        1024,
        50,
        TreiberStack::new,
    ));
    r.register(Scenario::stack(
        "stacks.optik",
        about,
        "stack/optik",
        1024,
        50,
        OptikStack::new,
    ));
    r.register(Scenario::stack(
        "stacks.elim",
        about,
        "stack/elim",
        1024,
        50,
        EliminationStack::new,
    ));
}

// ---------------------------------------------------------------------------
// alloc: the type-stable pool's magazine fast path.
// ---------------------------------------------------------------------------

/// A pool-compatible node of list-node size: a value plus the padding a
/// key/link/lock trio would occupy.
struct AllocNode {
    val: u64,
    _pad: [u64; 5],
}

impl AllocNode {
    fn make(val: u64) -> Self {
        AllocNode { val, _pad: [0; 5] }
    }
}

/// Slots each worker publishes into (its private region, or the shared
/// pool of regions in cross-thread mode).
const ALLOC_SLOTS_PER_THREAD: usize = 256;

/// One allocation-churn scenario: every iteration allocates a node,
/// publishes it into a slot (displacing the previous occupant), and
/// retires the displaced node through QSBR — the alloc/retire interleaving
/// of a write-heavy structure, with the structure itself stripped away.
///
/// `shared == false` gives each thread a private slot region, so retired
/// slots come straight back through the thread's own magazine;
/// `shared == true` has threads displace each other's nodes, so slots
/// recirculate through the depot.
fn alloc_pool_scenario(name: &str, about: &str, id: &str, shared: bool, arena: bool) -> Scenario {
    Scenario::custom(name, about, id, Subject::None, move |spec| {
        let pool: Arc<NodePool<AllocNode>> = if arena {
            NodePool::arena()
        } else {
            NodePool::new()
        };
        let slots: Vec<AtomicPtr<AllocNode>> = (0..spec.threads * ALLOC_SLOTS_PER_THREAD)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        let start = Instant::now();
        let results = run_workers(spec.threads, spec.duration, |ctx| {
            let mut rng = FastRng::for_thread(spec.seed, ctx.tid);
            let lo = if shared {
                0
            } else {
                ctx.tid * ALLOC_SLOTS_PER_THREAD
            };
            let span = if shared {
                slots.len()
            } else {
                ALLOC_SLOTS_PER_THREAD
            };
            let mut ops = 0u64;
            let mut sink = 0u64;
            while !ctx.should_stop() {
                let node = pool.alloc_init(|| AllocNode::make(ops));
                let slot = &slots[lo + rng.next_below(span as u64) as usize];
                let old = slot.swap(node, Ordering::AcqRel);
                if !old.is_null() {
                    // SAFETY: our swap unlinked `old`; QSBR covers readers
                    // that loaded it before the swap.
                    unsafe {
                        sink ^= (*old).val;
                        reclaim::with_local(|h| pool.retire(old, h));
                    }
                }
                ops += 1;
                reclaim::quiescent();
            }
            std::hint::black_box(sink);
            ops
        });
        let wall = start.elapsed();
        let ops: u64 = results.iter().sum();
        let stats = pool.stats();
        let mut m = Measurement::from_ops(ops, wall)
            .with_extra("magazine_hit_pct", 100.0 * stats.magazine_hit_rate());
        if let Some(a) = pool.arena_stats() {
            m = m.with_extra("arena_slab_allocs", a.slab_allocs as f64);
            m = m.with_extra(
                "freed_per_run_refill",
                a.refilled_slots as f64 / a.run_refills.max(1) as f64,
            );
        }
        m
    })
}

/// The malloc/free baseline for [`alloc_pool_scenario`]: identical loop,
/// but nodes are boxed and QSBR frees them back to the system allocator.
fn alloc_boxed_scenario(name: &str, about: &str, id: &str, shared: bool) -> Scenario {
    Scenario::custom(name, about, id, Subject::None, move |spec| {
        let slots: Vec<AtomicPtr<AllocNode>> = (0..spec.threads * ALLOC_SLOTS_PER_THREAD)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        let start = Instant::now();
        let results = run_workers(spec.threads, spec.duration, |ctx| {
            let mut rng = FastRng::for_thread(spec.seed, ctx.tid);
            let lo = if shared {
                0
            } else {
                ctx.tid * ALLOC_SLOTS_PER_THREAD
            };
            let span = if shared {
                slots.len()
            } else {
                ALLOC_SLOTS_PER_THREAD
            };
            let mut ops = 0u64;
            let mut sink = 0u64;
            while !ctx.should_stop() {
                let node = Box::into_raw(Box::new(AllocNode::make(ops)));
                let slot = &slots[lo + rng.next_below(span as u64) as usize];
                let old = slot.swap(node, Ordering::AcqRel);
                if !old.is_null() {
                    // SAFETY: our swap unlinked `old`; freed after grace.
                    unsafe {
                        sink ^= (*old).val;
                        reclaim::with_local(|h| h.retire(old));
                    }
                }
                ops += 1;
                reclaim::quiescent();
            }
            std::hint::black_box(sink);
            ops
        });
        let wall = start.elapsed();
        let ops: u64 = results.iter().sum();
        for slot in &slots {
            let p = slot.load(Ordering::Relaxed);
            if !p.is_null() {
                // SAFETY: workers exited; remaining occupants are ours.
                unsafe { drop(Box::from_raw(p)) };
            }
        }
        Measurement::from_ops(ops, wall)
    })
}

fn alloc(r: &mut Registry) {
    let about = "Allocation fast path: per-thread magazines recycle retired \
                 slots with zero shared-memory operations on a hit; the boxed \
                 baseline pays malloc/free plus QSBR bookkeeping every cycle";
    r.register(alloc_pool_scenario(
        "alloc.churn.pool",
        about,
        "alloc/churn-pool",
        false,
        false,
    ));
    r.register(alloc_boxed_scenario(
        "alloc.churn.boxed",
        about,
        "alloc/churn-boxed",
        false,
    ));
    r.register(alloc_pool_scenario(
        "alloc.xthread.pool",
        about,
        "alloc/xthread-pool",
        true,
        false,
    ));
    r.register(alloc_boxed_scenario(
        "alloc.xthread.boxed",
        about,
        "alloc/xthread-boxed",
        true,
    ));
    // Arena-backed twins of the two pool scenarios: identical loops, the
    // pool mounted in arena mode (aligned slabs, address-ordered refills).
    // A/B against the magazine pool with
    //   bench_all --ab alloc.churn.pool,alloc.arena.churn
    //   bench_all --ab alloc.xthread.pool,alloc.arena.xthread
    let about = "Arena-backed pool twins of alloc.churn.pool / \
                 alloc.xthread.pool: aligned type-stable slabs, depot hands \
                 out address-clustered magazine refills; compare interleaved \
                 with --ab";
    r.register(alloc_pool_scenario(
        "alloc.arena.churn",
        about,
        "alloc/arena-churn",
        false,
        true,
    ));
    r.register(alloc_pool_scenario(
        "alloc.arena.xthread",
        about,
        "alloc/arena-xthread",
        true,
        true,
    ));
}

// ---------------------------------------------------------------------------
// kv: the sharded key-value store subsystem.
// ---------------------------------------------------------------------------

/// One kv scenario: build the sharded store, fill, run the kv driver.
fn kv_scenario<B: optik_harness::api::ConcurrentMap + 'static>(
    name: &str,
    about: &str,
    id: &str,
    shards: usize,
    w: KvWorkload,
    make_backend: impl Fn(usize) -> B + Send + Sync + Clone + 'static,
) -> Scenario {
    let subject_make = make_backend.clone();
    let subject = Subject::map(move || KvStore::with_shards(shards, subject_make.clone()));
    Scenario::custom(name, about, id, subject, move |spec| {
        let store = KvStore::with_shards(shards, make_backend.clone());
        w.initial_fill(spec.seed, &store);
        let res = run_kv_workload(
            &store,
            spec.threads,
            spec.duration,
            &w,
            spec.seed,
            spec.record_latency,
        );
        let mut m = Measurement {
            ops: res.counts.total(),
            wall: res.duration,
            latency: res.latency,
            extra: Vec::new(),
        };
        if res.counts.scans > 0 {
            m = m.with_extra(
                "keys_per_scan",
                res.counts.scanned_entries as f64 / res.counts.scans as f64,
            );
        }
        m
    })
}

/// The per-shard backend constructors the kv groups sweep. `span` is the
/// key range a shard must be able to hold (used to size fixed-capacity
/// backends so `put` can never overflow).
fn kv_backends(
    r: &mut Registry,
    group: &str,
    about: &str,
    shards: usize,
    span: usize,
    w: &KvWorkload,
) {
    let name = |series: &str| format!("kv.{group}.{series}");
    r.register(kv_scenario(
        &name("optik-map"),
        about,
        "kv/optik-map",
        shards,
        w.clone(),
        move |_| OptikMapHashTable::with_bucket_capacity(span.max(16), 16),
    ));
    r.register(kv_scenario(
        &name("striped"),
        about,
        "kv/striped",
        shards,
        w.clone(),
        move |_| StripedHashTable::new(span.max(16), 16),
    ));
    r.register(kv_scenario(
        &name("striped-optik"),
        about,
        "kv/striped-optik",
        shards,
        w.clone(),
        move |_| StripedOptikHashTable::new(span.max(16), 16),
    ));
    r.register(kv_scenario(
        &name("resizable"),
        about,
        "kv/resizable",
        shards,
        w.clone(),
        move |_| ResizableStripedHashTable::new(16, 8),
    ));
}

fn kv(r: &mut Registry) {
    const SHARDS: usize = 8;
    const SIZE: u64 = 8192;
    let span = (2 * SIZE) as usize / SHARDS;

    // Read-heavy, skewed: the CDN/session-cache shape. Expectation: gets
    // are lock-free, so all backends scale with readers; striped-optik
    // leads under skew (no locking on the hot shard's misses).
    let about = "kv read-heavy: lock-free gets dominate; backends track their \
                 fig10 ordering, shard locks stay cold";
    let w = KvWorkload::new(
        SIZE,
        true,
        KvMix {
            put_pm: 50,
            remove_pm: 50,
            batch_get_pm: 0,
            batch_write_pm: 0,
            scan_pm: 0,
            batch: 0,
            ..KvMix::default()
        },
    );
    kv_backends(r, "read-heavy", about, SHARDS, span, &w);

    // Write-heavy, uniform: shard locks serialize writers per shard;
    // expectation: throughput is shard-parallel until writers outnumber
    // shards, then flattens.
    let about = "kv write-heavy: per-shard write serialization; scales until \
                 writers outnumber shards";
    let w = KvWorkload::new(
        SIZE,
        false,
        KvMix {
            put_pm: 300,
            remove_pm: 300,
            batch_get_pm: 0,
            batch_write_pm: 0,
            scan_pm: 0,
            batch: 0,
            ..KvMix::default()
        },
    );
    kv_backends(r, "write-heavy", about, SHARDS, span, &w);

    // Batched: sorted-shard acquisition amortizes locking over 8 keys;
    // multi-gets validate optimistically. Expectation: higher key
    // throughput than write-heavy at the same write fraction.
    let about = "kv batched: 8-key batches, sorted-shard acquisition; \
                 per-key cost amortizes vs single-key writes";
    let w = KvWorkload::new(
        SIZE,
        false,
        KvMix {
            put_pm: 50,
            remove_pm: 50,
            batch_get_pm: 250,
            batch_write_pm: 250,
            scan_pm: 0,
            batch: 8,
            ..KvMix::default()
        },
    );
    kv_backends(r, "batch", about, SHARDS, span, &w);

    // Scans: 1% full-store snapshot scans against a 20%-update stream.
    // Expectation: scans are validated per shard, so update throughput
    // dips but does not collapse; `keys_per_scan` ~= store size.
    let about = "kv scans: 1% validated snapshot scans under 20% updates; \
                 keys_per_scan tracks the store size";
    let scan_size = 1024u64;
    let scan_span = (2 * scan_size) as usize / SHARDS;
    let w = KvWorkload::new(
        scan_size,
        true,
        KvMix {
            put_pm: 100,
            remove_pm: 100,
            batch_get_pm: 0,
            batch_write_pm: 0,
            scan_pm: 10,
            batch: 0,
            ..KvMix::default()
        },
    );
    kv_backends(r, "scan", about, SHARDS, scan_span, &w);

    // Small store: the OPTIK array map as a *shard backend* (fig7's
    // structure promoted to a kv shard) vs its bucketed big sibling.
    let about = "kv small store: raw OPTIK array-map shards vs bucketed \
                 array-map shards at 256 entries";
    let small = KvWorkload::new(
        256,
        false,
        KvMix {
            put_pm: 50,
            remove_pm: 50,
            batch_get_pm: 0,
            batch_write_pm: 0,
            scan_pm: 0,
            batch: 0,
            ..KvMix::default()
        },
    );
    // Capacity = full key range: a shard can never overflow, whatever the
    // hash distribution does.
    r.register(kv_scenario(
        "kv.small.array",
        about,
        "kv/array-small",
        16,
        small.clone(),
        |_| OptikArrayMap::<OptikVersioned>::new(512),
    ));
    r.register(kv_scenario(
        "kv.small.optik-map",
        about,
        "kv/optik-map-small",
        16,
        small,
        |_| OptikMapHashTable::with_bucket_capacity(32, 16),
    ));

    // Multi-get–heavy: half the issued ops are 16-key multi-gets, with a
    // 10% single-key write stream keeping shard versions moving. Each
    // backend gets a `-perkey` twin that routes batched gets through the
    // pre-grouping `multi_get_per_key` baseline; compare interleaved with
    //   bench_all --ab kv.multiget.striped-perkey,kv.multiget.striped
    let about = "kv multi-get heavy: 50% 16-key multi-gets under 10% writes; \
                 grouped path routes once, validates one OPTIK window per \
                 involved shard, and plans without allocating (probes \
                 key-clustered only on contiguous-partition stores); \
                 `-perkey` twins re-route every key (A/B with --ab)";
    let grouped = KvWorkload::new(
        SIZE,
        false,
        KvMix {
            put_pm: 50,
            remove_pm: 50,
            batch_get_pm: 500,
            batch: 16,
            ..KvMix::default()
        },
    );
    let mut per_key = grouped.clone();
    per_key.mix.per_key_multiget = true;
    for (series, w) in [("", &grouped), ("-perkey", &per_key)] {
        let name = |backend: &str| format!("kv.multiget.{backend}{series}");
        r.register(kv_scenario(
            &name("optik-map"),
            about,
            "kv/optik-map",
            SHARDS,
            w.clone(),
            move |_| OptikMapHashTable::with_bucket_capacity(span.max(16), 16),
        ));
        r.register(kv_scenario(
            &name("striped"),
            about,
            "kv/striped",
            SHARDS,
            w.clone(),
            move |_| StripedHashTable::new(span.max(16), 16),
        ));
        r.register(kv_scenario(
            &name("striped-optik"),
            about,
            "kv/striped-optik",
            SHARDS,
            w.clone(),
            move |_| StripedOptikHashTable::new(span.max(16), 16),
        ));
        r.register(kv_scenario(
            &name("resizable"),
            about,
            "kv/resizable",
            SHARDS,
            w.clone(),
            move |_| ResizableStripedHashTable::new(16, 8),
        ));
    }

    // Shard-count ablation: same backend, same workload, 1..32 shards.
    // Expectation: single-shard ~= the bare backend plus lock overhead;
    // throughput grows with shards until it saturates the thread count.
    let about = "kv ablation: shard count sweep; write scaling follows \
                 min(threads, shards), gets are shard-agnostic";
    for shards in [1usize, 2, 4, 8, 16, 32] {
        let span = ((2 * SIZE) as usize / shards).max(16);
        let w = KvWorkload::new(
            SIZE,
            true,
            KvMix {
                put_pm: 50,
                remove_pm: 50,
                batch_get_pm: 0,
                batch_write_pm: 0,
                scan_pm: 0,
                batch: 0,
                ..KvMix::default()
            },
        );
        r.register(kv_scenario(
            &format!("kv.shards.s{shards}"),
            about,
            &format!("kv/striped-optik-s{shards}"),
            shards,
            w,
            move |_| StripedOptikHashTable::new(span, 16),
        ));
    }
}

// ---------------------------------------------------------------------------
// kv.hotkey / combine.overhead: zipfian hot-key skew and the
// flat-combining A/B.
// ---------------------------------------------------------------------------

/// One combining-mode kv scenario: the same shape as [`kv_scenario`] but
/// with an explicit [`CombineMode`] on the measured store.
///
/// The correctness subject runs in `Eager` mode whenever combining is
/// mounted at all: the linearizability tier's checker workloads are not
/// contended enough to cross the adaptive engagement threshold, so an
/// `Adaptive` subject would only ever exercise the fast path — `Eager`
/// forces every checked write through the publication protocol.
fn kv_combine_scenario<B: optik_harness::api::ConcurrentMap + 'static>(
    name: &str,
    about: &str,
    id: &str,
    shards: usize,
    mode: CombineMode,
    w: KvWorkload,
    make_backend: impl Fn(usize) -> B + Send + Sync + Clone + 'static,
) -> Scenario {
    let subject_make = make_backend.clone();
    let subject_mode = if mode == CombineMode::Off {
        CombineMode::Off
    } else {
        CombineMode::Eager
    };
    let subject = Subject::map(move || {
        KvStore::with_shards(shards, subject_make.clone()).with_combine_mode(subject_mode)
    });
    Scenario::custom(name, about, id, subject, move |spec| {
        let store = KvStore::with_shards(shards, make_backend.clone()).with_combine_mode(mode);
        w.initial_fill(spec.seed, &store);
        let res = run_kv_workload(
            &store,
            spec.threads,
            spec.duration,
            &w,
            spec.seed,
            spec.record_latency,
        );
        Measurement {
            ops: res.counts.total(),
            wall: res.duration,
            latency: res.latency,
            extra: Vec::new(),
        }
    })
}

fn kv_hotkey(r: &mut Registry) {
    const SHARDS: usize = 8;
    const SIZE: u64 = 8192;
    let span = (2 * SIZE) as usize / SHARDS;
    // Write-heavy (the kv.write-heavy mix) — reads are lock-free either
    // way, so writes are where combining can matter.
    let mix = KvMix {
        put_pm: 300,
        remove_pm: 300,
        batch_get_pm: 0,
        batch_write_pm: 0,
        scan_pm: 0,
        batch: 0,
        ..KvMix::default()
    };
    for (tag, alpha) in [("s099", 0.99f64), ("s120", 1.2f64)] {
        let about = "kv hot-key skew: writes concentrate on the hot keys' shards; \
                     the `*-nofc` twin of each backend is the combining-off \
                     baseline for the A/B (same workload, same seed schedule)";
        let w = KvWorkload::with_alpha(SIZE, alpha, mix);
        let name = |series: &str| format!("kv.hotkey.{tag}.{series}");
        r.register(kv_combine_scenario(
            &name("optik-map"),
            about,
            "kv/fc-optik-map",
            SHARDS,
            CombineMode::Adaptive,
            w.clone(),
            move |_| OptikMapHashTable::with_bucket_capacity(span.max(16), 16),
        ));
        r.register(kv_combine_scenario(
            &name("optik-map-nofc"),
            about,
            "kv/nofc-optik-map",
            SHARDS,
            CombineMode::Off,
            w.clone(),
            move |_| OptikMapHashTable::with_bucket_capacity(span.max(16), 16),
        ));
        r.register(kv_combine_scenario(
            &name("striped"),
            about,
            "kv/fc-striped",
            SHARDS,
            CombineMode::Adaptive,
            w.clone(),
            move |_| StripedHashTable::new(span.max(16), 16),
        ));
        r.register(kv_combine_scenario(
            &name("striped-nofc"),
            about,
            "kv/nofc-striped",
            SHARDS,
            CombineMode::Off,
            w.clone(),
            move |_| StripedHashTable::new(span.max(16), 16),
        ));
        r.register(kv_combine_scenario(
            &name("striped-optik"),
            about,
            "kv/fc-striped-optik",
            SHARDS,
            CombineMode::Adaptive,
            w.clone(),
            move |_| StripedOptikHashTable::new(span.max(16), 16),
        ));
        r.register(kv_combine_scenario(
            &name("striped-optik-nofc"),
            about,
            "kv/nofc-striped-optik",
            SHARDS,
            CombineMode::Off,
            w.clone(),
            move |_| StripedOptikHashTable::new(span.max(16), 16),
        ));
        r.register(kv_combine_scenario(
            &name("resizable"),
            about,
            "kv/fc-resizable",
            SHARDS,
            CombineMode::Adaptive,
            w.clone(),
            move |_| ResizableStripedHashTable::new(16, 8),
        ));
        r.register(kv_combine_scenario(
            &name("resizable-nofc"),
            about,
            "kv/nofc-resizable",
            SHARDS,
            CombineMode::Off,
            w.clone(),
            move |_| ResizableStripedHashTable::new(16, 8),
        ));
        // An ordered backend rides along so the correctness tiers get a
        // *range-observing* subject whose writes travel the publication
        // protocol (hash-sharded `KvStore<OrderedMap>` is itself an
        // `OrderedMap`, so range rounds cover combined writes too).
        let subject_make = move |_| OptikSkipList2::new();
        let ordered_subject = Subject::ordered(move || {
            KvStore::with_shards(SHARDS, subject_make).with_combine_mode(CombineMode::Eager)
        });
        let ow = w.clone();
        r.register(Scenario::custom(
            &name("skiplist"),
            about,
            "kv/fc-skiplist",
            ordered_subject,
            move |spec| {
                let store = KvStore::with_shards(SHARDS, subject_make)
                    .with_combine_mode(CombineMode::Adaptive);
                ow.initial_fill(spec.seed, &store);
                let res = run_kv_workload(
                    &store,
                    spec.threads,
                    spec.duration,
                    &ow,
                    spec.seed,
                    spec.record_latency,
                );
                Measurement {
                    ops: res.counts.total(),
                    wall: res.duration,
                    latency: res.latency,
                    extra: Vec::new(),
                }
            },
        ));
    }
}

fn combine_overhead(r: &mut Registry) {
    const SHARDS: usize = 8;
    const SIZE: u64 = 8192;
    let span = (2 * SIZE) as usize / SHARDS;
    // Uniform write-heavy: 8 shards, uniform keys — the adaptive fast
    // path should never engage, so `engaged` vs `bare` measures the
    // mounted-but-idle cost (one publication-list head read per write).
    let about = "combining overhead A/B: identical uniform write-heavy runs, \
                 `bare` with combining off vs `engaged` with the adaptive \
                 mount; equal throughput is the free-uncontended-path check";
    let w = KvWorkload::new(
        SIZE,
        false,
        KvMix {
            put_pm: 300,
            remove_pm: 300,
            batch_get_pm: 0,
            batch_write_pm: 0,
            scan_pm: 0,
            batch: 0,
            ..KvMix::default()
        },
    );
    r.register(kv_combine_scenario(
        "combine.overhead.bare",
        about,
        "kv/nofc-striped-optik",
        SHARDS,
        CombineMode::Off,
        w.clone(),
        move |_| StripedOptikHashTable::new(span.max(16), 16),
    ));
    r.register(kv_combine_scenario(
        "combine.overhead.engaged",
        about,
        "kv/fc-striped-optik",
        SHARDS,
        CombineMode::Adaptive,
        w,
        move |_| StripedOptikHashTable::new(span.max(16), 16),
    ));
}

// ---------------------------------------------------------------------------
// kv.range: range scans over ordered-sharded ordered backends.
// ---------------------------------------------------------------------------

/// One ordered kv scenario: ordered-sharded store over an [`OrderedMap`]
/// backend, driven by the range-capable kv driver.
fn kv_range_scenario<B: OrderedMap + 'static>(
    name: &str,
    about: &str,
    id: &str,
    shards: usize,
    max_key: u64,
    w: KvWorkload,
    make_backend: impl Fn(usize) -> B + Send + Sync + Clone + 'static,
) -> Scenario {
    let subject_make = make_backend.clone();
    let subject = Subject::ordered(move || {
        KvStore::with_ordered_shards(shards, max_key, subject_make.clone())
    });
    Scenario::custom(name, about, id, subject, move |spec| {
        let store = KvStore::with_ordered_shards(shards, max_key, make_backend.clone());
        w.initial_fill(spec.seed, &store);
        let res = run_kv_workload_ordered(
            &store,
            spec.threads,
            spec.duration,
            &w,
            spec.seed,
            spec.record_latency,
        );
        let mut m = Measurement {
            ops: res.counts.total(),
            wall: res.duration,
            latency: res.latency,
            extra: Vec::new(),
        };
        if res.counts.range_scans > 0 {
            m = m.with_extra(
                "keys_per_range",
                res.counts.ranged_entries as f64 / res.counts.range_scans as f64,
            );
        }
        if res.counts.rebalances > 0 {
            m = m.with_extra(
                "keys_per_migration",
                res.counts.migrated_keys as f64 / res.counts.rebalances as f64,
            );
        }
        m
    })
}

fn kv_range(r: &mut Registry) {
    const SHARDS: usize = 8;
    const SIZE: u64 = 8192;
    let max_key = 2 * SIZE;
    // Uniform keys: ordered sharding partitions the key space, so a skewed
    // stream would measure shard imbalance, not range-scan cost.
    // Expectation: ranges touch only the 1-2 partitions they intersect;
    // update throughput tracks the backend's fig11/bst ordering; the
    // locked-fallback path stays cold except under heavy write pressure.
    let about = "kv ranges: ordered sharding makes a 128-key window touch ~1 \
                 partition; throughput tracks the backend ladder, fraser \
                 ranges never lock";
    let w = KvWorkload::new(
        SIZE,
        false,
        KvMix {
            put_pm: 100,
            remove_pm: 100,
            range_pm: 50,
            range_span: 128,
            ..KvMix::default()
        },
    );
    let name = |series: &str| format!("kv.range.{series}");
    r.register(kv_range_scenario(
        &name("herlihy"),
        about,
        "kv/range-sl-herlihy",
        SHARDS,
        max_key,
        w.clone(),
        |_| HerlihySkipList::new(),
    ));
    r.register(kv_range_scenario(
        &name("herl-optik"),
        about,
        "kv/range-sl-herl-optik",
        SHARDS,
        max_key,
        w.clone(),
        |_| HerlihyOptikSkipList::new(),
    ));
    r.register(kv_range_scenario(
        &name("optik2"),
        about,
        "kv/range-sl-optik2",
        SHARDS,
        max_key,
        w.clone(),
        |_| OptikSkipList2::new(),
    ));
    r.register(kv_range_scenario(
        &name("fraser"),
        about,
        "kv/range-sl-fraser",
        SHARDS,
        max_key,
        w.clone(),
        |_| FraserSkipList::new(),
    ));
    r.register(kv_range_scenario(
        &name("bst-tk"),
        about,
        "kv/range-bst-tk",
        SHARDS,
        max_key,
        w,
        |_| OptikBst::new(),
    ));
}

// ---------------------------------------------------------------------------
// kv.ttl: native TTL/expiry over hash-sharded backends.
// ---------------------------------------------------------------------------

/// One TTL kv scenario: a TTL-enabled hash-sharded store under a mix of
/// TTL puts (wall-clock millisecond ticks), plain updates, and
/// incremental expiry sweeps.
fn kv_ttl_scenario<B: optik_harness::api::ConcurrentMap + 'static>(
    name: &str,
    about: &str,
    id: &str,
    shards: usize,
    w: KvWorkload,
    make_backend: impl Fn(usize) -> B + Send + Sync + Clone + 'static,
) -> Scenario {
    let subject_make = make_backend.clone();
    let subject = Subject::map(move || {
        KvStore::with_shards_ttl(shards, Arc::new(SystemClock::new()), subject_make.clone())
    });
    Scenario::custom(name, about, id, subject, move |spec| {
        let store =
            KvStore::with_shards_ttl(shards, Arc::new(SystemClock::new()), make_backend.clone());
        w.initial_fill(spec.seed, &store);
        let res = run_kv_workload(
            &store,
            spec.threads,
            spec.duration,
            &w,
            spec.seed,
            spec.record_latency,
        );
        let mut m = Measurement {
            ops: res.counts.total(),
            wall: res.duration,
            latency: res.latency,
            extra: Vec::new(),
        };
        if res.counts.sweeps > 0 {
            m = m.with_extra(
                "swept_per_sweep",
                res.counts.swept_keys as f64 / res.counts.sweeps as f64,
            );
        }
        m
    })
}

fn kv_ttl(r: &mut Registry) {
    const SHARDS: usize = 8;
    const SIZE: u64 = 8192;
    let span = (2 * SIZE) as usize / SHARDS;

    // TTL entries live 30ms (SystemClock ticks are wall milliseconds), so
    // a standard measurement window turns over the TTL population several
    // times. Expectation: gets stay lock-free (one extra validated
    // deadline lookup), sweep cost is bounded by its budget, and the
    // ladder between backends tracks the plain kv groups.
    let about = "kv TTL: 30ms lifetimes under wall-clock ticks; lazy expiry on \
                 read plus budgeted sweeps; backend ladder tracks kv.read-heavy";
    let w = KvWorkload::new(
        SIZE,
        false,
        KvMix {
            put_pm: 50,
            remove_pm: 50,
            ttl_put_pm: 150,
            ttl_span: 30,
            sweep_pm: 10,
            sweep_budget: 128,
            ..KvMix::default()
        },
    );
    let name = |series: &str| format!("kv.ttl.{series}");
    r.register(kv_ttl_scenario(
        &name("optik-map"),
        about,
        "kv/ttl-optik-map",
        SHARDS,
        w.clone(),
        move |_| OptikMapHashTable::with_bucket_capacity(span.max(16), 16),
    ));
    r.register(kv_ttl_scenario(
        &name("striped-optik"),
        about,
        "kv/ttl-striped-optik",
        SHARDS,
        w.clone(),
        move |_| StripedOptikHashTable::new(span.max(16), 16),
    ));
    r.register(kv_ttl_scenario(
        &name("resizable"),
        about,
        "kv/ttl-resizable",
        SHARDS,
        w,
        move |_| ResizableStripedHashTable::new(16, 8),
    ));
}

// ---------------------------------------------------------------------------
// kv.rebalance: online range-partition rebalancing under skewed load.
// ---------------------------------------------------------------------------

fn kv_rebalance(r: &mut Registry) {
    const SHARDS: usize = 8;
    const SIZE: u64 = 8192;
    let max_key = 2 * SIZE;
    // Skewed keys over contiguous partitions: exactly the imbalance the
    // rebalancer exists for — the zipf head concentrates on one
    // partition, rebalance rounds split it at its median toward the
    // lighter neighbor, and the op counters re-measure. Expectation:
    // migrations are bounded bursts (MIGRATION_BATCH per lock hold),
    // range and point throughput dip during a burst but recover, and
    // `keys_per_migration` stays near half the hot partition.
    let about = "kv rebalance: zipf head vs contiguous partitions; rebalance \
                 rounds split the hot partition at its median; reads validate \
                 the routing version and retry across flips";
    let w = KvWorkload::new(
        SIZE,
        true,
        KvMix {
            put_pm: 100,
            remove_pm: 100,
            range_pm: 30,
            range_span: 128,
            rebalance_pm: 2,
            ..KvMix::default()
        },
    );
    let name = |series: &str| format!("kv.rebalance.{series}");
    r.register(kv_range_scenario(
        &name("optik2"),
        about,
        "kv/rebal-sl-optik2",
        SHARDS,
        max_key,
        w.clone(),
        |_| OptikSkipList2::new(),
    ));
    r.register(kv_range_scenario(
        &name("fraser"),
        about,
        "kv/rebal-sl-fraser",
        SHARDS,
        max_key,
        w.clone(),
        |_| FraserSkipList::new(),
    ));
    r.register(kv_range_scenario(
        &name("bst-tk"),
        about,
        "kv/rebal-bst-tk",
        SHARDS,
        max_key,
        w,
        |_| OptikBst::new(),
    ));
}

// ---------------------------------------------------------------------------
// map.ordered: the raw ordered structures as value-carrying maps.
// ---------------------------------------------------------------------------

/// One ordered-map scenario: the raw backend under a mixed
/// put/remove/get/range workload (10%/10% writes, 2% bounded ranges).
fn ordered_map_scenario<M: OrderedMap + 'static>(
    name: &str,
    about: &str,
    id: &str,
    size: u64,
    skewed: bool,
    range_span: u64,
    make: impl Fn() -> M + Send + Sync + Clone + 'static,
) -> Scenario {
    let subject = Subject::ordered(make.clone());
    Scenario::custom(name, about, id, subject, move |spec| {
        let m = make();
        // Key sampling only; the op mix is dispatched inline below.
        let w = KvWorkload::new(size, skewed, KvMix::default());
        let mut rng = FastRng::new(spec.seed ^ 0xF111_0F11);
        let mut inserted = 0;
        while inserted < size {
            let k = rng.range_inclusive(w.key_lo, w.key_hi);
            if m.put(k, k).is_none() {
                inserted += 1;
            }
        }
        let start = Instant::now();
        let results = run_workers(spec.threads, spec.duration, |ctx| {
            let mut rng = FastRng::for_thread(spec.seed, ctx.tid);
            let mut ops = 0u64;
            let mut ranges = 0u64;
            let mut ranged = 0u64;
            while !ctx.should_stop() {
                let p = rng.next_below(1000) as u32;
                let k = w.sample_key(&mut rng);
                if p < 100 {
                    m.put(k, k);
                } else if p < 200 {
                    m.remove(k);
                } else if p < 220 {
                    let mut n = 0u64;
                    m.range(k, k.saturating_add(range_span - 1), &mut |_, _| n += 1);
                    ranges += 1;
                    ranged += n;
                } else {
                    let _ = m.get(k);
                }
                ops += 1;
                reclaim::quiescent();
            }
            (ops, ranges, ranged)
        });
        let wall = start.elapsed();
        let ops: u64 = results.iter().map(|r| r.0).sum();
        let ranges: u64 = results.iter().map(|r| r.1).sum();
        let ranged: u64 = results.iter().map(|r| r.2).sum();
        let mut meas = Measurement::from_ops(ops, wall);
        if ranges > 0 {
            meas = meas.with_extra("keys_per_range", ranged as f64 / ranges as f64);
        }
        meas
    })
}

fn map_ordered(r: &mut Registry) {
    // Expectation: point-op ordering mirrors fig11/bst; ranges add a
    // per-node validation cost to the OPTIK designs that fraser's marked
    // pointers get for free, and keys_per_range sits near span/2 (half the
    // sampled windows fall past the populated prefix of the key space).
    let about = "Extension: ordered structures as maps — in-place OPTIK \
                 upserts + validated range scans; point ops track fig11/bst, \
                 ranges pay per-step validation except on fraser";
    const SIZE: u64 = 1024;
    const SPAN: u64 = 64;
    let name = |series: &str| format!("map.ordered.{series}");
    r.register(ordered_map_scenario(
        &name("herlihy"),
        about,
        "omap/sl-herlihy",
        SIZE,
        true,
        SPAN,
        HerlihySkipList::new,
    ));
    r.register(ordered_map_scenario(
        &name("herl-optik"),
        about,
        "omap/sl-herl-optik",
        SIZE,
        true,
        SPAN,
        HerlihyOptikSkipList::new,
    ));
    r.register(ordered_map_scenario(
        &name("optik1"),
        about,
        "omap/sl-optik1",
        SIZE,
        true,
        SPAN,
        OptikSkipList1::new,
    ));
    r.register(ordered_map_scenario(
        &name("optik2"),
        about,
        "omap/sl-optik2",
        SIZE,
        true,
        SPAN,
        OptikSkipList2::new,
    ));
    r.register(ordered_map_scenario(
        &name("fraser"),
        about,
        "omap/sl-fraser",
        SIZE,
        true,
        SPAN,
        FraserSkipList::new,
    ));
    r.register(ordered_map_scenario(
        &name("bst-gl"),
        about,
        "omap/bst-gl",
        SIZE,
        true,
        SPAN,
        OptikGlBst::<OptikVersioned>::new,
    ));
    r.register(ordered_map_scenario(
        &name("bst-tk"),
        about,
        "omap/bst-tk",
        SIZE,
        true,
        SPAN,
        OptikBst::new,
    ));
}

// ---------------------------------------------------------------------------
// probe.overhead: hook-site cost A/B pair.
// ---------------------------------------------------------------------------

/// One validated-acquisition loop; `hooked` adds the densest per-op probe
/// usage a real data structure emits (a timestamp pair, a counter bump,
/// and a histogram record). With the `probe` feature off both series must
/// measure the same — that equality is the layer's zero-cost claim, and
/// the pinned bench-smoke in CI sweeps both to keep it observable.
fn probe_overhead_scenario(name: &str, about: &str, id: &str, hooked: bool) -> Scenario {
    Scenario::custom(name, about, id, Subject::None, move |spec| {
        let lock = OptikVersioned::default();
        let start = Instant::now();
        let results = run_workers(spec.threads, spec.duration, |ctx| {
            let mut ops = 0u64;
            let mut acc = 0u64;
            while !ctx.should_stop() {
                let t0 = if hooked { optik_probe::now() } else { 0 };
                loop {
                    let v = lock.get_version();
                    if OptikVersioned::is_locked_version(v) {
                        synchro::relax();
                        continue;
                    }
                    if lock.try_lock_version(v) {
                        lock.unlock();
                        break;
                    }
                    if hooked {
                        optik_probe::count(optik_probe::Event::ReadRetry);
                    }
                }
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(ops);
                if hooked {
                    optik_probe::record(
                        optik_probe::HistKind::RetryLoop,
                        optik_probe::elapsed(t0, optik_probe::now()),
                    );
                }
                ops += 1;
            }
            (ops, std::hint::black_box(acc))
        });
        let wall = start.elapsed();
        let ops: u64 = results.iter().map(|r| r.0).sum();
        Measurement::from_ops(ops, wall)
    })
}

fn probe_overhead(r: &mut Registry) {
    let about = "Hook-overhead A/B: bare and hooked run the same acquisition \
                 loop; a probe-disabled build must show no gap between them";
    r.register(probe_overhead_scenario(
        "probe.overhead.bare",
        about,
        "probe/overhead-bare",
        false,
    ));
    r.register(probe_overhead_scenario(
        "probe.overhead.hooked",
        about,
        "probe/overhead-hooked",
        true,
    ));
}

// ---------------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------------

fn ablate_base_lock(r: &mut Registry) {
    let about = "Ablation: Fig 5's 'both OPTIK locks behave identically' claim \
                 checked inside a real structure (one contended OPTIK lock)";
    let w = Workload::paper(128, 20, false);
    r.register(Scenario::set(
        "ablate-base-lock.versioned",
        about,
        "list/optik-gl",
        w.clone(),
        OptikGlList::<OptikVersioned>::new,
    ));
    r.register(Scenario::set(
        "ablate-base-lock.ticket",
        about,
        "list/optik-gl-ticket",
        w,
        OptikGlList::<OptikTicket>::new,
    ));
}

/// Handle wrapper exporting node-cache hit/miss counters on drop.
struct CountingHandle<'a> {
    inner: optik_lists::OptikCacheHandle<'a>,
    hits: &'a AtomicU64,
    misses: &'a AtomicU64,
}

impl SetHandle for CountingHandle<'_> {
    fn search(&mut self, key: u64) -> Option<u64> {
        self.inner.search(key)
    }
    fn insert(&mut self, key: u64, val: u64) -> bool {
        self.inner.insert(key, val)
    }
    fn delete(&mut self, key: u64) -> Option<u64> {
        self.inner.delete(key)
    }
}

impl Drop for CountingHandle<'_> {
    fn drop(&mut self) {
        self.hits
            .fetch_add(self.inner.cache_hits(), Ordering::Relaxed);
        self.misses
            .fetch_add(self.inner.cache_misses(), Ordering::Relaxed);
    }
}

fn ablate_node_cache(r: &mut Registry) {
    let about = "Ablation S5.1: node-cache hit rate and throughput delta; the \
                 paper reports ~49.8%/~40% hit rates on large/small lists for \
                 gains of ~50%/~15%";
    for size in [64u64, 1024, 8192] {
        let w = Workload::paper(size, 20, false);
        r.register(Scenario::set(
            &format!("ablate-node-cache.{size}.optik"),
            about,
            "list/optik",
            w.clone(),
            OptikList::new,
        ));
        r.register(Scenario::custom(
            &format!("ablate-node-cache.{size}.optik-cache"),
            about,
            "list/optik-cache",
            Subject::set(OptikCacheList::new),
            move |spec| {
                let set = OptikCacheList::new();
                w.initial_fill(spec.seed, |k, v| set.insert(k, v));
                let hits = AtomicU64::new(0);
                let misses = AtomicU64::new(0);
                let res = run_set_workload(
                    spec.threads,
                    spec.duration,
                    &w,
                    spec.seed,
                    spec.record_latency,
                    |_| CountingHandle {
                        inner: set.handle(),
                        hits: &hits,
                        misses: &misses,
                    },
                );
                let h = hits.load(Ordering::Relaxed) as f64;
                let m = misses.load(Ordering::Relaxed) as f64;
                Measurement::from(res).with_extra("cache_hit_pct", 100.0 * h / (h + m).max(1.0))
            },
        ));
    }
}

fn ablate_resize(r: &mut Registry) {
    let about = "Ablation: what Fig 10's buckets==elements sizing hides — an \
                 undersized fixed table degenerates to O(chain) scans while the \
                 per-segment-resizable table grows back to O(1)";
    const ELEMS: u64 = 8192;
    const SEGMENTS: usize = 128;
    let w = Workload::paper(ELEMS, 20, false);
    r.register(Scenario::set(
        "ablate-resize.java-well-sized",
        about,
        "ht/java",
        w.clone(),
        || StripedHashTable::new(ELEMS as usize, SEGMENTS),
    ));
    r.register(Scenario::set(
        "ablate-resize.java-under-sized",
        about,
        "ht/java-undersized",
        w.clone(),
        || StripedHashTable::new(ELEMS as usize / 64, SEGMENTS),
    ));
    r.register(Scenario::set(
        "ablate-resize.java-resize",
        about,
        "ht/java-resize",
        w,
        // Starts at 2 buckets/segment and must grow to fit 8192 elements
        // during the initial fill of every repetition.
        || ResizableStripedHashTable::new(SEGMENTS, 2),
    ));
}

fn ablate_victim(r: &mut Registry) {
    let about = "Ablation S5.4: sensitivity of the 'more than two waiters' \
                 victim-queue threshold on the enqueue-heavy workload; t2 is \
                 the paper's choice, tinf disables the victim queue";
    for (series, threshold) in [
        ("t0", 0u32),
        ("t1", 1),
        ("t2", 2),
        ("t4", 4),
        ("t8", 8),
        ("t16", 16),
        ("tinf", u32::MAX),
    ] {
        r.register(Scenario::queue(
            &format!("ablate-victim.{series}"),
            about,
            // Distinct subject id per threshold: t0 (always divert) and
            // tinf (victim queue disabled) are different code paths, and
            // the correctness tiers deduplicate by this id — sharing
            // fig12's "queue/optik3" would leave them untested.
            &format!("queue/optik3-{series}"),
            QUEUE_PREFILL,
            60,
            move || VictimQueue::with_threshold(threshold),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optik_harness::scenario::RunSpec;
    use std::time::Duration;

    #[test]
    fn registry_is_complete_and_consistent() {
        let r = registry();
        assert!(r.len() >= 100, "expected the full sweep, got {}", r.len());
        assert_eq!(
            r.families(),
            vec![
                "fig5",
                "fig7",
                "fig9",
                "fig10",
                "fig11",
                "fig12",
                "bst",
                "stacks",
                "alloc",
                "kv",
                "combine",
                "map",
                "probe",
                "ablate-base-lock",
                "ablate-node-cache",
                "ablate-resize",
                "ablate-victim",
            ],
            "one family per benchmark binary"
        );
        // Every group has a blurb and at least one scenario.
        for g in r.groups() {
            assert!(!group_blurb(g).is_empty(), "missing blurb for `{g}`");
            assert!(!r.in_group(g).is_empty());
        }
        // Figure 9's table has the paper's seven columns.
        let fig9_large: Vec<&str> = r
            .in_group("fig9.large")
            .iter()
            .map(|s| s.series())
            .collect();
        assert_eq!(
            fig9_large,
            vec![
                "harris",
                "lazy",
                "lazy-cache",
                "mcs-gl-opt",
                "optik-gl",
                "optik",
                "optik-cache"
            ]
        );
    }

    #[test]
    fn smoke_run_one_scenario_per_kind() {
        let r = registry();
        let spec = RunSpec {
            threads: 2,
            duration: Duration::from_millis(5),
            seed: 1,
            record_latency: false,
        };
        for name in [
            "fig5.optik-versioned",   // raw lock loop
            "fig7.small.optik",       // array map as set
            "fig9.small.optik-cache", // per-thread handles
            "fig12.stable.optik2",    // queue
            "stacks.treiber",         // stack
            "kv.batch.striped-optik", // sharded kv store, batched ops
            "kv.small.array",         // kv over array-map shards
            "ablate-victim.t2",       // parameterized queue
        ] {
            let s = r.get(name).unwrap_or_else(|| panic!("missing {name}"));
            let m = s.run(&spec);
            assert!(m.ops > 0, "{name} did no work");
        }
    }

    #[test]
    fn kv_family_is_complete() {
        let r = registry();
        let kv: Vec<&Scenario> = r.select(&["kv".into()]);
        assert!(
            kv.len() >= 20,
            "expected >=20 kv scenarios, got {}",
            kv.len()
        );
        // Every kv scenario must be a map subject (MapSpec-checkable);
        // the ordered-backed ones are additionally range-checkable.
        for s in &kv {
            assert!(
                matches!(s.subject().kind(), "map" | "ordered"),
                "{}",
                s.name()
            );
        }
        // The four workload groups sweep the same backend series.
        for g in ["kv.read-heavy", "kv.write-heavy", "kv.batch", "kv.scan"] {
            let series: Vec<&str> = r.in_group(g).iter().map(|s| s.series()).collect();
            assert_eq!(
                series,
                vec!["optik-map", "striped", "striped-optik", "resizable"],
                "{g}"
            );
        }
        assert_eq!(r.in_group("kv.shards").len(), 6, "shard ablation sweep");
    }

    #[test]
    fn ordered_families_are_complete() {
        let r = registry();
        let range_series: Vec<&str> = r.in_group("kv.range").iter().map(|s| s.series()).collect();
        assert_eq!(
            range_series,
            vec!["herlihy", "herl-optik", "optik2", "fraser", "bst-tk"],
            "ordered backends mounted in the kv store"
        );
        let omap_series: Vec<&str> = r
            .in_group("map.ordered")
            .iter()
            .map(|s| s.series())
            .collect();
        assert_eq!(
            omap_series,
            vec![
                "herlihy",
                "herl-optik",
                "optik1",
                "optik2",
                "fraser",
                "bst-gl",
                "bst-tk"
            ],
            "every ordered structure appears as a raw map subject"
        );
        // All of them are ordered subjects: the linearizability tier runs
        // both the single-key map rounds and the range rounds on each.
        for s in r.select(&["kv.range".into(), "map.ordered".into()]) {
            assert_eq!(s.subject().kind(), "ordered", "{}", s.name());
        }
    }

    #[test]
    fn ordered_scenarios_run_and_report_range_metric() {
        let r = registry();
        let spec = RunSpec {
            threads: 2,
            duration: Duration::from_millis(20),
            seed: 9,
            record_latency: false,
        };
        for name in ["kv.range.optik2", "map.ordered.fraser"] {
            let s = r.get(name).unwrap_or_else(|| panic!("missing {name}"));
            let m = s.run(&spec);
            assert!(m.ops > 0, "{name} did no work");
            let (k, v) = m
                .extra
                .iter()
                .find(|(k, _)| k == "keys_per_range")
                .unwrap_or_else(|| panic!("{name}: range metric missing"));
            assert_eq!(k, "keys_per_range");
            assert!(*v >= 0.0);
        }
    }

    #[test]
    fn ttl_and_rebalance_families_are_complete() {
        let r = registry();
        let ttl_series: Vec<&str> = r.in_group("kv.ttl").iter().map(|s| s.series()).collect();
        assert_eq!(
            ttl_series,
            vec!["optik-map", "striped-optik", "resizable"],
            "TTL-wrapped backend sweep"
        );
        for s in r.in_group("kv.ttl") {
            assert_eq!(s.subject().kind(), "map", "{}", s.name());
        }
        let rebal_series: Vec<&str> = r
            .in_group("kv.rebalance")
            .iter()
            .map(|s| s.series())
            .collect();
        assert_eq!(
            rebal_series,
            vec!["optik2", "fraser", "bst-tk"],
            "rebalancing ordered-backend sweep"
        );
        for s in r.in_group("kv.rebalance") {
            assert_eq!(s.subject().kind(), "ordered", "{}", s.name());
        }
    }

    #[test]
    fn ttl_scenario_runs_and_rebalance_scenario_migrates() {
        let r = registry();
        let spec = RunSpec {
            threads: 2,
            duration: Duration::from_millis(60),
            seed: 9,
            record_latency: false,
        };
        let s = r.get("kv.ttl.striped-optik").expect("ttl scenario");
        let m = s.run(&spec);
        assert!(m.ops > 0, "ttl scenario did no work");
        // 30ms TTLs inside a 60ms window: sweeps run (the swept count may
        // be 0 on an unlucky scheduler, but the metric must be reported).
        assert!(
            m.extra.iter().any(|(k, _)| k == "swept_per_sweep"),
            "sweep metric missing: {:?}",
            m.extra
        );
        let s = r.get("kv.rebalance.optik2").expect("rebalance scenario");
        let m = s.run(&spec);
        assert!(m.ops > 0, "rebalance scenario did no work");
        let (_, v) = m
            .extra
            .iter()
            .find(|(k, _)| k == "keys_per_migration")
            .expect("zipf load over contiguous partitions must migrate");
        assert!(*v > 0.0, "migrations moved nothing");
    }

    #[test]
    fn kv_scan_scenario_reports_keys_per_scan() {
        let r = registry();
        let s = r.get("kv.scan.striped").unwrap();
        let m = s.run(&RunSpec {
            threads: 2,
            duration: Duration::from_millis(20),
            seed: 3,
            record_latency: false,
        });
        let (k, v) = m
            .extra
            .iter()
            .find(|(k, _)| k == "keys_per_scan")
            .expect("scan metric present");
        assert_eq!(k, "keys_per_scan");
        assert!(*v > 0.0, "{v}");
    }

    #[test]
    fn node_cache_scenario_reports_hit_rate() {
        let r = registry();
        let s = r.get("ablate-node-cache.64.optik-cache").unwrap();
        let m = s.run(&RunSpec {
            threads: 2,
            duration: Duration::from_millis(10),
            seed: 2,
            record_latency: false,
        });
        let (k, v) = &m.extra[0];
        assert_eq!(k, "cache_hit_pct");
        assert!((0.0..=100.0).contains(v), "{v}");
    }
}
