//! Shared plumbing for the figure-regeneration binaries.
//!
//! The benchmark stack has three layers:
//!
//! - [`scenarios`] — the registry: every figure/ablation of the paper
//!   registered as a named [`optik_harness::Scenario`];
//! - [`optik_harness::driver`] — the sweep/rep/median engine (env knobs
//!   below);
//! - [`cli`] — table printing and the per-family `main` bodies.
//!
//! Every binary accepts the same environment knobs so full-scale runs
//! (paper-like) and CI smoke runs use one code path:
//!
//! | variable         | meaning                               | default |
//! |------------------|---------------------------------------|---------|
//! | `BENCH_THREADS`  | comma-separated thread counts         | `1,2,4,8,...,2×cores` |
//! | `BENCH_DUR_MS`   | measurement window per point (ms)     | `300`   |
//! | `BENCH_REPS`     | repetitions per point (median taken)  | `3`     |
//! | `BENCH_SEED`     | workload RNG seed                     | `42`    |
//!
//! The paper uses 5 s × 11 repetitions; set `BENCH_DUR_MS=5000
//! BENCH_REPS=11` to match.
//!
//! The `bench_all` binary runs any subset of the registry by name, writes
//! `BENCH_<family>.json` reports, and compares against a checked-in
//! baseline (see `BENCH_baseline.json` at the repository root).

pub mod cli;
pub mod digest;
pub mod filter;
pub mod scenarios;

pub use optik_harness as harness;

/// Sweep configuration (re-exported from the harness driver; the historic
/// name `Config` is kept for the Criterion benches and external users).
pub type Config = optik_harness::driver::SweepConfig;

pub use cli::{banner, fmt_percentiles};

/// Support for the Criterion benches: fixed-window measurements converted
/// to per-operation time.
pub mod crit {
    use std::time::Duration;

    use optik_harness::api::ConcurrentSet;
    use optik_harness::runner::{run_queue_workload, run_set_workload};
    use optik_harness::{ConcurrentQueue, Workload};

    /// Default contended thread count for the Criterion smoke benches.
    pub const THREADS: usize = 8;
    /// Default measurement window.
    pub const WINDOW: Duration = Duration::from_millis(80);

    /// Converts "(ops executed, wall time)" into the duration `iters`
    /// operations would take — the shape `Criterion::iter_custom` needs.
    pub fn scale(iters: u64, total_ops: u64, window: Duration) -> Duration {
        let per_op = window.as_secs_f64() / total_ops.max(1) as f64;
        Duration::from_secs_f64(per_op * iters as f64)
    }

    /// One fixed-window set-workload run; returns `(ops, wall)`.
    pub fn set_window<S: ConcurrentSet>(
        make: impl Fn() -> S,
        size: u64,
        update_pct: u32,
        skewed: bool,
    ) -> (u64, Duration) {
        let w = Workload::paper(size, update_pct, skewed);
        let set = make();
        w.initial_fill(1, |k, v| set.insert(k, v));
        let res = run_set_workload(THREADS, WINDOW, &w, 2, false, |_| &set);
        (res.counts.total(), res.duration)
    }

    /// One fixed-window queue run; returns `(ops, wall)`.
    pub fn queue_window<Q: ConcurrentQueue>(
        make: impl Fn() -> Q,
        enqueue_pct: u32,
    ) -> (u64, Duration) {
        let q = make();
        for i in 0..4096u64 {
            q.enqueue(i);
        }
        let res = run_queue_workload(&q, THREADS, WINDOW, enqueue_pct, 2, false);
        (res.counts.total(), res.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = Config::from_env();
        assert!(!cfg.threads.is_empty());
        assert!(cfg.threads.windows(2).all(|w| w[0] < w[1]));
        assert!(cfg.reps >= 1);
        assert!(cfg.duration.as_millis() > 0);
    }
}
