//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every `figN_*` binary accepts the same environment knobs so full-scale
//! runs (paper-like) and CI smoke runs use one code path:
//!
//! | variable         | meaning                               | default |
//! |------------------|---------------------------------------|---------|
//! | `BENCH_THREADS`  | comma-separated thread counts         | `1,2,4,8,...,2×cores` |
//! | `BENCH_DUR_MS`   | measurement window per point (ms)     | `300`   |
//! | `BENCH_REPS`     | repetitions per point (median taken)  | `3`     |
//! | `BENCH_SEED`     | workload RNG seed                     | `42`    |
//!
//! The paper uses 5 s × 11 repetitions; set `BENCH_DUR_MS=5000
//! BENCH_REPS=11` to match.

use std::time::Duration;

pub use optik_harness as harness;

/// Parsed benchmark configuration (see module docs for the knobs).
#[derive(Debug, Clone)]
pub struct Config {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Measurement window per data point.
    pub duration: Duration,
    /// Repetitions per data point (median reported).
    pub reps: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
        let threads = match std::env::var("BENCH_THREADS") {
            Ok(s) => s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect(),
            Err(_) => {
                let mut v = vec![1, 2, 4, 8, 16, 24, 32, 48, 64];
                v.retain(|&t| t <= 2 * cores);
                if !v.contains(&cores) {
                    v.push(cores);
                }
                if !v.contains(&(2 * cores)) {
                    v.push(2 * cores);
                }
                v.sort_unstable();
                v.dedup();
                v
            }
        };
        let duration = Duration::from_millis(
            std::env::var("BENCH_DUR_MS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(300),
        );
        let reps = std::env::var("BENCH_REPS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(3)
            .max(1);
        let seed = std::env::var("BENCH_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        Self {
            threads,
            duration,
            reps,
            seed,
        }
    }
}

/// Pretty header shared by the binaries.
pub fn banner(fig: &str, what: &str, cfg: &Config) {
    println!("== {fig}: {what}");
    println!(
        "   threads={:?} duration={:?} reps={} seed={}",
        cfg.threads, cfg.duration, cfg.reps, cfg.seed
    );
    println!();
}

/// Formats a latency percentile row: `p5/p25/p50/p75/p95 (n)`.
pub fn fmt_percentiles(p: &harness::Percentiles) -> String {
    format!(
        "{}/{}/{}/{}/{} (n={})",
        p.p5, p.p25, p.p50, p.p75, p.p95, p.count
    )
}

/// Support for the Criterion benches: fixed-window measurements converted
/// to per-operation time.
pub mod crit {
    use std::time::Duration;

    use optik_harness::api::ConcurrentSet;
    use optik_harness::runner::{run_queue_workload, run_set_workload};
    use optik_harness::{ConcurrentQueue, Workload};

    /// Default contended thread count for the Criterion smoke benches.
    pub const THREADS: usize = 8;
    /// Default measurement window.
    pub const WINDOW: Duration = Duration::from_millis(80);

    /// Converts "(ops executed, wall time)" into the duration `iters`
    /// operations would take — the shape `Criterion::iter_custom` needs.
    pub fn scale(iters: u64, total_ops: u64, window: Duration) -> Duration {
        let per_op = window.as_secs_f64() / total_ops.max(1) as f64;
        Duration::from_secs_f64(per_op * iters as f64)
    }

    /// One fixed-window set-workload run; returns `(ops, wall)`.
    pub fn set_window<S: ConcurrentSet>(
        make: impl Fn() -> S,
        size: u64,
        update_pct: u32,
        skewed: bool,
    ) -> (u64, Duration) {
        let w = Workload::paper(size, update_pct, skewed);
        let set = make();
        w.initial_fill(1, |k, v| set.insert(k, v));
        let res = run_set_workload(THREADS, WINDOW, &w, 2, false, |_| &set);
        (res.counts.total(), res.duration)
    }

    /// One fixed-window queue run; returns `(ops, wall)`.
    pub fn queue_window<Q: ConcurrentQueue>(
        make: impl Fn() -> Q,
        enqueue_pct: u32,
    ) -> (u64, Duration) {
        let q = make();
        for i in 0..4096u64 {
            q.enqueue(i);
        }
        let res = run_queue_workload(&q, THREADS, WINDOW, enqueue_pct, 2, false);
        (res.counts.total(), res.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = Config::from_env();
        assert!(!cfg.threads.is_empty());
        assert!(cfg.threads.windows(2).all(|w| w[0] < w[1]));
        assert!(cfg.reps >= 1);
        assert!(cfg.duration.as_millis() > 0);
    }
}
