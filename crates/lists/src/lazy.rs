//! The lazy concurrent list of Heller et al. [22] (*lazy* in Figure 9).
//!
//! The state-of-the-art lock-based baseline the paper optimizes against.
//! Nodes carry a spinlock and a *logical-delete* `marked` flag:
//!
//! - searches are wait-free traversals that report a key present iff its
//!   node is unmarked;
//! - updates traverse optimistically, lock the involved nodes, then
//!   *validate* (`!pred.marked && !cur.marked && pred.next == cur`) —
//!   i.e. the "acquire the lock and then check for conflicts" structure
//!   OPTIK replaces with a single CAS;
//! - deletion first marks (logical), then unlinks (physical).
//!
//! We follow the optimized ASCYLIB variant used by the paper: infeasible
//! updates return `false` without locking.

use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;

use reclaim::NodePool;
use synchro::{Backoff, RawLock, TtasLock};

use crate::{assert_user_key, ConcurrentSet, Key, Val, LIST_POOL_CHUNK, TAIL_KEY};

pub(crate) struct Node {
    key: Key,
    val: Val,
    marked: AtomicBool,
    lock: TtasLock,
    next: AtomicPtr<Node>,
}

impl Node {
    fn make(key: Key, val: Val, next: *mut Node) -> Self {
        Node {
            key,
            val,
            marked: AtomicBool::new(false),
            lock: TtasLock::new(),
            next: AtomicPtr::new(next),
        }
    }
}

/// The lazy (Heller et al.) list.
///
/// Nodes come from a type-stable [`NodePool`]. No pointer survives across
/// operations (the plain lazy list does no node caching), so recycled
/// slots — including their `marked` flag and spinlock — are plainly
/// re-initialized after the grace period.
pub struct LazyList {
    head: *mut Node,
    pool: Arc<NodePool<Node>>,
}

// SAFETY: updates lock the nodes they modify; searches read only atomic
// fields of QSBR-protected nodes.
unsafe impl Send for LazyList {}
unsafe impl Sync for LazyList {}

/// A node pool shareable across many [`LazyList`]s — one allocator for all
/// buckets of a hash table, matching ssmem's per-thread-allocator shape
/// (§5.1). Per-bucket pools would give every bucket its own magazines and
/// depot, multiplying the allocation path's cache footprint by the bucket
/// count.
#[derive(Clone)]
pub struct LazyListPool(Arc<NodePool<Node>>);

impl LazyListPool {
    /// Creates a pool (default chunk capacity: it serves a whole table).
    pub fn new() -> Self {
        Self(NodePool::new())
    }

    /// Creates an arena-backed pool ([`NodePool::arena`]): aligned slabs
    /// and address-ordered magazine refills, same API and safety story.
    pub fn arena() -> Self {
        Self(NodePool::arena())
    }
}

impl Default for LazyListPool {
    fn default() -> Self {
        Self::new()
    }
}

impl LazyList {
    /// Creates an empty list with a private node pool.
    pub fn new() -> Self {
        Self::from_pool(NodePool::with_chunk_capacity(LIST_POOL_CHUNK))
    }

    /// Creates an empty list with a private arena-backed node pool.
    pub fn new_arena() -> Self {
        Self::from_pool(NodePool::arena_with_chunk_capacity(LIST_POOL_CHUNK))
    }

    /// Creates an empty list drawing nodes from `pool`, shared with other
    /// lists of the same table (see [`LazyListPool`]).
    pub fn with_pool(pool: &LazyListPool) -> Self {
        Self::from_pool(Arc::clone(&pool.0))
    }

    fn from_pool(pool: Arc<NodePool<Node>>) -> Self {
        let tail = pool.alloc_init(|| Node::make(TAIL_KEY, 0, std::ptr::null_mut()));
        let head = pool.alloc_init(|| Node::make(crate::HEAD_KEY, 0, tail));
        Self { head, pool }
    }

    /// # Safety
    ///
    /// Caller must be inside a QSBR grace period.
    #[inline]
    unsafe fn locate(&self, key: Key) -> (*mut Node, *mut Node) {
        // SAFETY: per contract.
        unsafe {
            let mut pred = self.head;
            let mut cur = (*pred).next.load(Ordering::Acquire);
            while (*cur).key < key {
                pred = cur;
                cur = (*cur).next.load(Ordering::Acquire);
                synchro::prefetch::read(cur);
            }
            (pred, cur)
        }
    }

    /// Heller et al.'s validation: both nodes unmarked and still linked.
    ///
    /// # Safety
    ///
    /// Both pointers must be QSBR-protected; caller holds both locks (or at
    /// least pred's for insert).
    #[inline]
    unsafe fn validate(pred: *mut Node, cur: *mut Node) -> bool {
        // SAFETY: per contract.
        unsafe {
            !(*pred).marked.load(Ordering::Acquire)
                && !(*cur).marked.load(Ordering::Acquire)
                && (*pred).next.load(Ordering::Acquire) == cur
        }
    }
}

impl Default for LazyList {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentSet for LazyList {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        // SAFETY: QSBR grace period.
        unsafe {
            let mut cur = self.head;
            while (*cur).key < key {
                cur = (*cur).next.load(Ordering::Acquire);
                synchro::prefetch::read(cur);
            }
            ((*cur).key == key && !(*cur).marked.load(Ordering::Acquire)).then(|| (*cur).val)
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: QSBR grace period throughout the attempt.
            unsafe {
                let (pred, cur) = self.locate(key);
                if (*cur).key == key {
                    if !(*cur).marked.load(Ordering::Acquire) {
                        // Infeasible: present and alive — no locking.
                        return false;
                    }
                    // Key is being deleted; retry until it is unlinked.
                    bo.backoff();
                    continue;
                }
                (*pred).lock.lock();
                if Self::validate(pred, cur) {
                    let newnode = self.pool.alloc_init(|| Node::make(key, val, cur));
                    (*pred).next.store(newnode, Ordering::Release);
                    (*pred).lock.unlock();
                    return true;
                }
                (*pred).lock.unlock();
                bo.backoff();
            }
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: QSBR grace period throughout the attempt.
            unsafe {
                let (pred, cur) = self.locate(key);
                if (*cur).key != key {
                    return None;
                }
                if (*cur).marked.load(Ordering::Acquire) {
                    // Concurrent delete won; linearize after it.
                    return None;
                }
                (*pred).lock.lock();
                (*cur).lock.lock();
                if Self::validate(pred, cur) {
                    // Logical delete (the linearization point)...
                    (*cur).marked.store(true, Ordering::Release);
                    // ...then physical unlink.
                    (*pred)
                        .next
                        .store((*cur).next.load(Ordering::Relaxed), Ordering::Release);
                    let val = (*cur).val;
                    (*cur).lock.unlock();
                    (*pred).lock.unlock();
                    // SAFETY: unlinked exactly once by us.
                    reclaim::with_local(|h| self.pool.retire(cur, h));
                    return Some(val);
                }
                (*cur).lock.unlock();
                (*pred).lock.unlock();
                bo.backoff();
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: QSBR grace period.
        unsafe {
            let mut n = 0;
            let mut cur = (*self.head).next.load(Ordering::Acquire);
            while (*cur).key != TAIL_KEY {
                if !(*cur).marked.load(Ordering::Relaxed) {
                    n += 1;
                }
                cur = (*cur).next.load(Ordering::Acquire);
                synchro::prefetch::read(cur);
            }
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let l = LazyList::new();
        assert!(l.insert(4, 40));
        assert!(l.insert(2, 20));
        assert!(!l.insert(4, 41));
        assert_eq!(l.search(2), Some(20));
        assert_eq!(l.delete(4), Some(40));
        assert_eq!(l.search(4), None);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn exactly_one_delete_wins() {
        let l = Arc::new(LazyList::new());
        for round in 1..=100u64 {
            assert!(l.insert(round, round));
            let mut handles = Vec::new();
            for _ in 0..6 {
                let l = Arc::clone(&l);
                handles.push(std::thread::spawn(move || l.delete(round).is_some()));
            }
            let winners: usize = handles
                .into_iter()
                .map(|h| usize::from(h.join().unwrap()))
                .sum();
            assert_eq!(winners, 1, "round {round}");
        }
        assert!(l.is_empty());
    }

    #[test]
    fn insert_delete_race_on_same_key_is_linearizable() {
        let l = Arc::new(LazyList::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                let mut net = 0i64;
                for i in 0..synchro::stress::ops(20_000) {
                    let k = (t ^ i) % 8 + 1;
                    if i % 2 == 0 {
                        if l.insert(k, k) {
                            net += 1;
                        }
                    } else if l.delete(k).is_some() {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(l.len() as i64, net);
    }
}
