//! Global-lock OPTIK list (*optik-gl*, §5.1).
//!
//! The transformation of the global-lock list with the OPTIK pattern, "very
//! similar to that of the concurrent map in §4.1": one OPTIK lock protects
//! the whole list; update operations traverse optimistically and
//! lock-and-validate only if they are feasible, so the ~half of updates
//! that return false never synchronize. Searches never lock.
//!
//! Every committed update conflicts with any concurrent one (false
//! conflicts), so this design targets low-contention/per-bucket use — it is
//! the basis of the paper's best hash table (*optik-gl* buckets, §5.2).

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use optik::{OptikLock, OptikVersioned};
use reclaim::NodePool;
use synchro::Backoff;

use crate::{assert_user_key, ConcurrentSet, Key, Val, LIST_POOL_CHUNK, TAIL_KEY};

struct Node {
    key: Key,
    val: Val,
    next: AtomicPtr<Node>,
}

impl Node {
    fn make(key: Key, val: Val, next: *mut Node) -> Self {
        Node {
            key,
            val,
            next: AtomicPtr::new(next),
        }
    }
}

/// The global-lock OPTIK list (*optik-gl*), generic over the lock
/// implementation.
///
/// Nodes live in a type-stable [`NodePool`]: allocation hits the calling
/// thread's magazine, and unlinked nodes recycle through QSBR. This list
/// never caches node pointers across operations, so recycled slots are
/// plainly re-initialized (`alloc_init`).
pub struct OptikGlList<L: OptikLock = OptikVersioned> {
    lock: L,
    head: *mut Node,
    pool: Arc<NodePool<Node>>,
}

// SAFETY: updates validate through the global OPTIK lock; searches are
// oblivious and QSBR-protected.
unsafe impl<L: OptikLock> Send for OptikGlList<L> {}
unsafe impl<L: OptikLock> Sync for OptikGlList<L> {}

/// A node pool shareable across many [`OptikGlList`]s — one allocator for
/// all buckets of a hash table, matching ssmem's per-thread-allocator
/// shape (§5.1). Per-bucket pools would give every bucket its own
/// magazines and depot, multiplying the allocation path's cache footprint
/// by the bucket count. Nodes are lock-flavor-independent, so one pool
/// serves lists of any `L`.
#[derive(Clone)]
pub struct OptikGlListPool(Arc<NodePool<Node>>);

impl OptikGlListPool {
    /// Creates a pool (default chunk capacity: it serves a whole table).
    pub fn new() -> Self {
        Self(NodePool::new())
    }

    /// Creates an arena-backed pool ([`NodePool::arena`]): aligned slabs
    /// and address-ordered magazine refills, same API and safety story.
    pub fn arena() -> Self {
        Self(NodePool::arena())
    }
}

impl Default for OptikGlListPool {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: OptikLock> OptikGlList<L> {
    /// Creates an empty list with a private node pool.
    pub fn new() -> Self {
        Self::from_pool(NodePool::with_chunk_capacity(LIST_POOL_CHUNK))
    }

    /// Creates an empty list with a private arena-backed node pool.
    pub fn new_arena() -> Self {
        Self::from_pool(NodePool::arena_with_chunk_capacity(LIST_POOL_CHUNK))
    }

    /// Creates an empty list drawing nodes from `pool`, shared with other
    /// lists of the same table (see [`OptikGlListPool`]).
    pub fn with_pool(pool: &OptikGlListPool) -> Self {
        Self::from_pool(Arc::clone(&pool.0))
    }

    fn from_pool(pool: Arc<NodePool<Node>>) -> Self {
        let tail = pool.alloc_init(|| Node::make(TAIL_KEY, 0, std::ptr::null_mut()));
        let head = pool.alloc_init(|| Node::make(crate::HEAD_KEY, 0, tail));
        Self {
            lock: L::default(),
            head,
            pool,
        }
    }

    /// # Safety
    ///
    /// Caller must be inside a QSBR grace period.
    #[inline]
    unsafe fn locate(&self, key: Key) -> (*mut Node, *mut Node) {
        // SAFETY: per contract.
        unsafe {
            let mut pred = self.head;
            let mut cur = (*pred).next.load(Ordering::Acquire);
            while (*cur).key < key {
                pred = cur;
                cur = (*cur).next.load(Ordering::Acquire);
                synchro::prefetch::read(cur);
            }
            (pred, cur)
        }
    }
}

impl<L: OptikLock> Default for OptikGlList<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: OptikLock> ConcurrentSet for OptikGlList<L> {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        // SAFETY: QSBR grace period.
        unsafe {
            let (_, cur) = self.locate(key);
            ((*cur).key == key).then(|| (*cur).val)
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            let vn = self.lock.get_version();
            if L::is_locked_version(vn) {
                synchro::relax();
                continue;
            }
            // SAFETY: QSBR grace period; traversal is read-only.
            unsafe {
                let (pred, cur) = self.locate(key);
                if (*cur).key == key {
                    // Infeasible update: no synchronization at all.
                    return false;
                }
                if !self.lock.try_lock_version(vn) {
                    bo.backoff();
                    continue;
                }
                // Validated: no update committed since vn, so (pred, cur)
                // is still the correct link.
                let newnode = self.pool.alloc_init(|| Node::make(key, val, cur));
                (*pred).next.store(newnode, Ordering::Release);
                self.lock.unlock();
                return true;
            }
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            let vn = self.lock.get_version();
            if L::is_locked_version(vn) {
                synchro::relax();
                continue;
            }
            // SAFETY: QSBR grace period.
            unsafe {
                let (pred, cur) = self.locate(key);
                if (*cur).key != key {
                    return None;
                }
                if !self.lock.try_lock_version(vn) {
                    bo.backoff();
                    continue;
                }
                (*pred)
                    .next
                    .store((*cur).next.load(Ordering::Relaxed), Ordering::Release);
                let val = (*cur).val;
                self.lock.unlock();
                // SAFETY: unlinked exactly once; cur came from this pool.
                reclaim::with_local(|h| self.pool.retire(cur, h));
                return Some(val);
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: QSBR grace period.
        unsafe {
            let mut n = 0;
            let mut cur = (*self.head).next.load(Ordering::Acquire);
            while (*cur).key != TAIL_KEY {
                n += 1;
                cur = (*cur).next.load(Ordering::Acquire);
                synchro::prefetch::read(cur);
            }
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optik::OptikTicket;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let l: OptikGlList = OptikGlList::new();
        assert!(l.insert(2, 20));
        assert!(l.insert(8, 80));
        assert_eq!(l.search(2), Some(20));
        assert_eq!(l.delete(8), Some(80));
        assert_eq!(l.delete(8), None);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn ticket_lock_variant_works() {
        let l: OptikGlList<OptikTicket> = OptikGlList::new();
        assert!(l.insert(1, 10));
        assert_eq!(l.search(1), Some(10));
        assert_eq!(l.delete(1), Some(10));
        assert!(l.is_empty());
    }

    #[test]
    fn infeasible_updates_do_not_bump_version() {
        let l: OptikGlList = OptikGlList::new();
        assert!(l.insert(5, 50));
        let v = l.lock.get_version();
        assert!(!l.insert(5, 51));
        assert_eq!(l.delete(7), None);
        assert_eq!(l.search(5), Some(50));
        assert_eq!(l.lock.get_version(), v);
    }

    #[test]
    fn contended_updates_net_out() {
        let l: Arc<OptikGlList> = Arc::new(OptikGlList::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                let mut net = 0i64;
                for i in 0..synchro::stress::ops(20_000) {
                    let k = (t + i * 13) % 16 + 1;
                    if i % 2 == 0 {
                        if l.insert(k, k) {
                            net += 1;
                        }
                    } else if l.delete(k).is_some() {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(l.len() as i64, net);
    }
}
