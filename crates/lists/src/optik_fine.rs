//! The fine-grained OPTIK-based linked list (Figure 8 of the paper).
//!
//! Each node carries its own OPTIK lock. Traversals perform
//! **hand-over-hand version tracking**: a node's version is read *before*
//! following its `next` pointer, so at the end of the traversal the
//! operation holds `(node, version)` pairs it can lock-and-validate with a
//! single CAS each.
//!
//! Key properties from the paper:
//!
//! - searches are "completely oblivious to concurrency" — plain sequential
//!   traversals (Fig. 8(c));
//! - no `deleted` flag is needed (unlike the lazy list): the OPTIK lock of
//!   a deleted node is **never released**, so any later `try_lock_version`
//!   or validation against it fails;
//! - the linearization point of updates is the actual store to
//!   `pred.next`.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use optik::{OptikLock, OptikVersioned};
use reclaim::NodePool;
use synchro::Backoff;

use crate::{assert_user_key, ConcurrentSet, Key, Val, LIST_POOL_CHUNK, TAIL_KEY};

pub(crate) struct Node {
    key: Key,
    val: Val,
    lock: OptikVersioned,
    next: AtomicPtr<Node>,
}

impl Node {
    fn make(key: Key, val: Val, next: *mut Node) -> Self {
        Node {
            key,
            val,
            lock: OptikVersioned::new(),
            next: AtomicPtr::new(next),
        }
    }
}

/// The fine-grained OPTIK list (*optik* in Figure 9).
///
/// Nodes come from a type-stable [`NodePool`]. `(node, version)` pairs are
/// only held *within* one operation, never across quiescent points, so a
/// recycled slot — whose locked-forever deleted version gets replaced by a
/// fresh unlocked lock — can have no surviving validators (the grace
/// period outlives every operation that read the old version).
pub struct OptikList {
    head: *mut Node,
    pool: Arc<NodePool<Node>>,
}

// SAFETY: all shared mutation goes through per-node OPTIK locks and atomic
// next pointers; reclamation is QSBR.
unsafe impl Send for OptikList {}
unsafe impl Sync for OptikList {}

/// A node pool shareable across many [`OptikList`]s — one allocator for
/// all buckets of a hash table, matching ssmem's per-thread-allocator
/// shape (§5.1). Per-bucket pools would give every bucket its own
/// magazines and depot, multiplying the allocation path's cache footprint
/// by the bucket count.
#[derive(Clone)]
pub struct OptikListPool(Arc<NodePool<Node>>);

impl OptikListPool {
    /// Creates a pool (default chunk capacity: it serves a whole table).
    pub fn new() -> Self {
        Self(NodePool::new())
    }

    /// Creates an arena-backed pool ([`NodePool::arena`]): aligned slabs
    /// and address-ordered magazine refills, same API and safety story.
    pub fn arena() -> Self {
        Self(NodePool::arena())
    }
}

impl Default for OptikListPool {
    fn default() -> Self {
        Self::new()
    }
}

impl OptikList {
    /// Creates an empty list (head and tail sentinels only) with a private
    /// node pool.
    pub fn new() -> Self {
        Self::from_pool(NodePool::with_chunk_capacity(LIST_POOL_CHUNK))
    }

    /// Creates an empty list with a private arena-backed node pool.
    pub fn new_arena() -> Self {
        Self::from_pool(NodePool::arena_with_chunk_capacity(LIST_POOL_CHUNK))
    }

    /// Creates an empty list drawing nodes from `pool`, shared with other
    /// lists of the same table (see [`OptikListPool`]).
    pub fn with_pool(pool: &OptikListPool) -> Self {
        Self::from_pool(Arc::clone(&pool.0))
    }

    fn from_pool(pool: Arc<NodePool<Node>>) -> Self {
        let tail = pool.alloc_init(|| Node::make(TAIL_KEY, 0, std::ptr::null_mut()));
        let head = pool.alloc_init(|| Node::make(crate::HEAD_KEY, 0, tail));
        Self { head, pool }
    }

    /// Traversal for deletions: returns `(pred, predv, cur, curv)` with
    /// `pred.key < key <= cur.key`, where each version was read *on
    /// arrival* at the node — before its key or next pointer (Fig. 8(a)).
    ///
    /// # Safety
    ///
    /// Caller must be inside a QSBR-protected section (no quiescence until
    /// the returned pointers are no longer used).
    #[inline]
    unsafe fn locate_tracking(
        &self,
        start: *mut Node,
        start_v: optik::Version,
        key: Key,
    ) -> (*mut Node, optik::Version, *mut Node, optik::Version) {
        // SAFETY: nodes reachable during this grace period stay allocated.
        unsafe {
            let mut pred;
            let mut predv;
            let mut cur = start;
            let mut curv = start_v;
            loop {
                pred = cur;
                predv = curv;
                cur = (*pred).next.load(Ordering::Acquire);
                synchro::prefetch::read(cur);
                curv = (*cur).lock.get_version();
                if (*cur).key >= key {
                    return (pred, predv, cur, curv);
                }
            }
        }
    }
}

impl Default for OptikList {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentSet for OptikList {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        // SAFETY: past the quiescent point, every reachable node survives
        // until our next quiescent point (QSBR grace period).
        unsafe {
            let mut cur = self.head;
            while (*cur).key < key {
                cur = (*cur).next.load(Ordering::Acquire);
                synchro::prefetch::read(cur);
            }
            ((*cur).key == key).then(|| (*cur).val)
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: within the QSBR grace period (no quiescence below).
            unsafe {
                // Fig. 8(b): version of each node read before advancing.
                let headv = (*self.head).lock.get_version();
                let (pred, predv, cur, _curv) = self.locate_tracking(self.head, headv, key);
                if (*cur).key == key {
                    // Infeasible: returns without any synchronization.
                    return false;
                }
                if !(*pred).lock.try_lock_version(predv) {
                    bo.backoff();
                    continue;
                }
                // Validated: pred unmodified since we read predv, hence
                // still linked and still pointing at cur.
                let newnode = self.pool.alloc_init(|| Node::make(key, val, cur));
                (*pred).next.store(newnode, Ordering::Release);
                (*pred).lock.unlock();
                return true;
            }
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: within the QSBR grace period (no quiescence below).
            unsafe {
                let headv = (*self.head).lock.get_version();
                let (pred, predv, cur, curv) = self.locate_tracking(self.head, headv, key);
                if (*cur).key != key {
                    return None;
                }
                if !(*pred).lock.try_lock_version(predv) {
                    bo.backoff();
                    continue;
                }
                if !(*cur).lock.try_lock_version(curv) {
                    // Revert (not unlock!) to avoid signalling a false
                    // conflict on pred to concurrent operations (Fig. 8(a)).
                    (*pred).lock.revert();
                    bo.backoff();
                    continue;
                }
                // cur's lock is intentionally NEVER released: a locked-
                // forever version makes any stale validation against the
                // deleted node fail.
                (*pred)
                    .next
                    .store((*cur).next.load(Ordering::Relaxed), Ordering::Release);
                let val = (*cur).val;
                (*pred).lock.unlock();
                // SAFETY: cur is unlinked; one retire; recycled after grace.
                reclaim::with_local(|h| self.pool.retire(cur, h));
                return Some(val);
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace-period traversal as in search.
        unsafe {
            let mut n = 0;
            let mut cur = (*self.head).next.load(Ordering::Acquire);
            while (*cur).key != TAIL_KEY {
                n += 1;
                cur = (*cur).next.load(Ordering::Acquire);
                synchro::prefetch::read(cur);
            }
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_list_properties() {
        let l = OptikList::new();
        assert!(l.is_empty());
        assert_eq!(l.search(5), None);
        assert_eq!(l.delete(5), None);
    }

    #[test]
    fn insert_maintains_sorted_reachability() {
        let l = OptikList::new();
        for k in [9u64, 2, 7, 4, 1] {
            assert!(l.insert(k, k + 100));
        }
        // SAFETY: single-threaded here.
        unsafe {
            let mut cur = (*l.head).next.load(Ordering::Relaxed);
            let mut prev_key = 0;
            while (*cur).key != TAIL_KEY {
                assert!((*cur).key > prev_key, "sorted order violated");
                prev_key = (*cur).key;
                cur = (*cur).next.load(Ordering::Relaxed);
            }
        }
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn deleted_nodes_lock_stays_locked() {
        let l = OptikList::new();
        assert!(l.insert(5, 50));
        // Grab the node pointer before deleting.
        let node = unsafe { (*l.head).next.load(Ordering::Relaxed) };
        assert_eq!(l.delete(5), Some(50));
        // SAFETY: QSBR keeps the node alive (this thread has not quiesced
        // since... actually delete() quiesced on entry, but the retire
        // happened after, and we haven't quiesced since the retire).
        let v = unsafe { (*node).lock.get_version() };
        assert!(
            OptikVersioned::is_locked_version(v),
            "deleted node's lock must remain locked forever"
        );
    }

    #[test]
    fn contended_single_key_insert_delete() {
        let l = Arc::new(OptikList::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                let mut ins = 0u64;
                let mut del = 0u64;
                for _ in 0..synchro::stress::ops(20_000) {
                    if l.insert(42, 1) {
                        ins += 1;
                    }
                    if l.delete(42).is_some() {
                        del += 1;
                    }
                }
                (ins, del)
            }));
        }
        let (mut ins, mut del) = (0, 0);
        for h in handles {
            let (i, d) = h.join().unwrap();
            ins += i;
            del += d;
        }
        // Every successful insert is eventually deleted or remains (≤1).
        let remaining = l.len() as u64;
        assert_eq!(ins, del + remaining);
        assert!(remaining <= 1);
    }

    #[test]
    fn concurrent_readers_during_churn_see_consistent_values() {
        let l = Arc::new(OptikList::new());
        for k in (2..100u64).step_by(2) {
            l.insert(k, k * 7);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        // Churners insert/delete odd keys.
        for t in 0..4u64 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for i in 0..synchro::stress::ops(30_000) {
                    let k = ((t * 31 + i) % 50) * 2 + 1;
                    if i % 2 == 0 {
                        l.insert(k, k * 7);
                    } else {
                        l.delete(k);
                    }
                }
            }));
        }
        // Readers verify stable even keys are always present and correct.
        for _ in 0..4 {
            let l = Arc::clone(&l);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for k in (2..100u64).step_by(2) {
                        assert_eq!(l.search(k), Some(k * 7), "stable key {k} lost");
                    }
                }
            }));
        }
        for h in handles.drain(..4) {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
}
