//! Sorted concurrent linked lists (§4.2 and §5.1 of the OPTIK paper).
//!
//! The paper's Figure 9 compares seven list algorithms; all are implemented
//! here, from scratch:
//!
//! | paper name   | type                  | design |
//! |--------------|-----------------------|--------|
//! | `harris`     | [`HarrisList`]        | lock-free, marked next-pointers (Harris \[19\]) |
//! | `lazy`       | [`LazyList`]          | lock-based, logical-delete flags (Heller et al. \[22\]) |
//! | `lazy-cache` | [`LazyCacheList`]     | lazy list + node caching (§5.1) |
//! | `mcs-gl-opt` | [`GlobalLockList`]    | global MCS lock, non-synchronized searches |
//! | `optik-gl`   | [`OptikGlList`]       | global OPTIK lock: infeasible updates never lock |
//! | `optik`      | [`OptikList`]         | fine-grained OPTIK, hand-over-hand version tracking (Fig. 8) |
//! | `optik-cache`| [`OptikCacheList`]    | fine-grained OPTIK + node caching (§5.1) |
//!
//! All lists store `u64 → u64` with sentinel head/tail keys `0` and
//! `u64::MAX`; user keys must lie strictly between. Memory reclamation is
//! QSBR (the `reclaim` crate): every operation announces a quiescent point
//! on entry, so plain library users never interact with reclamation.
//! Node-caching lists allocate from a type-stable [`reclaim::NodePool`].

#![warn(missing_docs)]

mod global_lock;
mod harris;
mod lazy;
mod lazy_cache;
mod optik_cache;
mod optik_fine;
mod optik_gl;
mod seq;

pub use global_lock::GlobalLockList;
pub use harris::HarrisList;
pub use lazy::{LazyList, LazyListPool};
pub use lazy_cache::{LazyCacheHandle, LazyCacheList};
pub use optik_cache::{OptikCacheHandle, OptikCacheList};
pub use optik_fine::{OptikList, OptikListPool};
pub use optik_gl::{OptikGlList, OptikGlListPool};
pub use seq::SeqList;

pub use optik_harness::api::{ConcurrentSet, Key, SetHandle, Val};

/// Node-pool chunk size for list instances. Smaller than the pool default
/// because bucketed hash tables build one list — hence one pool — per
/// bucket, and each touched bucket reserves at least one chunk.
pub(crate) const LIST_POOL_CHUNK: usize = 256;

/// Sentinel key of the head node; user keys must be greater.
pub const HEAD_KEY: Key = 0;
/// Sentinel key of the tail node; user keys must be smaller.
pub const TAIL_KEY: Key = u64::MAX;

#[inline]
pub(crate) fn assert_user_key(key: Key) {
    debug_assert!(
        key > HEAD_KEY && key < TAIL_KEY,
        "user keys must be in (0, u64::MAX)"
    );
}

#[cfg(test)]
mod cross_tests {
    //! One behavioural suite run over every list implementation.

    use super::*;
    use std::sync::Arc;

    pub(crate) fn implementations() -> Vec<(&'static str, Arc<dyn ConcurrentSet>)> {
        vec![
            ("seq", Arc::new(SeqList::new())),
            ("mcs-gl-opt", Arc::new(GlobalLockList::new())),
            (
                "optik-gl",
                Arc::new(OptikGlList::<optik::OptikVersioned>::new()),
            ),
            ("optik", Arc::new(OptikList::new())),
            ("optik-cache", Arc::new(OptikCacheList::new())),
            ("lazy", Arc::new(LazyList::new())),
            ("lazy-cache", Arc::new(LazyCacheList::new())),
            ("harris", Arc::new(HarrisList::new())),
        ]
    }

    #[test]
    fn roundtrip_semantics() {
        for (name, l) in implementations() {
            assert!(l.is_empty(), "{name}");
            assert!(l.insert(10, 100), "{name}");
            assert!(l.insert(5, 50), "{name}");
            assert!(l.insert(20, 200), "{name}");
            assert!(!l.insert(10, 999), "{name}: duplicate");
            assert_eq!(l.search(10), Some(100), "{name}");
            assert_eq!(l.search(5), Some(50), "{name}");
            assert_eq!(l.search(15), None, "{name}");
            assert_eq!(l.len(), 3, "{name}");
            assert_eq!(l.delete(10), Some(100), "{name}");
            assert_eq!(l.delete(10), None, "{name}");
            assert_eq!(l.search(10), None, "{name}");
            assert_eq!(l.len(), 2, "{name}");
        }
    }

    #[test]
    fn ascending_and_descending_inserts() {
        for (name, l) in implementations() {
            for k in 1..=50u64 {
                assert!(l.insert(k, k), "{name}");
            }
            for k in (51..=100u64).rev() {
                assert!(l.insert(k, k), "{name}");
            }
            assert_eq!(l.len(), 100, "{name}");
            for k in 1..=100u64 {
                assert_eq!(l.search(k), Some(k), "{name} key {k}");
            }
            for k in 1..=100u64 {
                assert_eq!(l.delete(k), Some(k), "{name} key {k}");
            }
            assert!(l.is_empty(), "{name}");
        }
    }

    #[test]
    fn boundary_keys_accepted() {
        for (name, l) in implementations() {
            assert!(l.insert(1, 11), "{name}: smallest user key");
            assert!(l.insert(u64::MAX - 1, 22), "{name}: largest user key");
            assert_eq!(l.search(1), Some(11), "{name}");
            assert_eq!(l.search(u64::MAX - 1), Some(22), "{name}");
            assert_eq!(l.delete(1), Some(11), "{name}");
            assert_eq!(l.delete(u64::MAX - 1), Some(22), "{name}");
        }
    }

    #[test]
    fn random_ops_match_oracle() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for (name, l) in implementations() {
            let mut rng = StdRng::seed_from_u64(0xB0BA);
            let mut model = std::collections::BTreeMap::new();
            for _ in 0..10_000 {
                let k = rng.gen_range(1..=64u64);
                match rng.gen_range(0..3) {
                    0 => {
                        let expect = !model.contains_key(&k);
                        if expect {
                            model.insert(k, k * 3);
                        }
                        assert_eq!(l.insert(k, k * 3), expect, "{name} insert {k}");
                    }
                    1 => {
                        let expect = model.remove(&k);
                        assert_eq!(l.delete(k), expect, "{name} delete {k}");
                    }
                    _ => {
                        assert_eq!(l.search(k), model.get(&k).copied(), "{name} search {k}");
                    }
                }
            }
            assert_eq!(l.len(), model.len(), "{name} final size");
        }
    }

    #[test]
    fn concurrent_disjoint_ranges_are_exact() {
        const THREADS: u64 = 8;
        const RANGE: u64 = 200;
        for (name, l) in implementations() {
            if name == "seq" {
                continue; // not thread-safe
            }
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let l = Arc::clone(&l);
                handles.push(std::thread::spawn(move || {
                    let lo = t * RANGE + 1;
                    for k in lo..lo + RANGE {
                        assert!(l.insert(k, k * 2));
                    }
                    for k in lo..lo + RANGE {
                        assert_eq!(l.search(k), Some(k * 2));
                    }
                    for k in (lo..lo + RANGE).step_by(2) {
                        assert_eq!(l.delete(k), Some(k * 2));
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                l.len() as u64,
                THREADS * RANGE / 2,
                "{name}: half of each range deleted"
            );
        }
    }

    #[test]
    fn concurrent_contended_net_count() {
        use std::sync::atomic::{AtomicI64, Ordering};
        const THREADS: u64 = 8;
        const OPS: u64 = 20_000;
        const KEYS: u64 = 32; // heavy contention
        for (name, l) in implementations() {
            if name == "seq" {
                continue;
            }
            let net = Arc::new(AtomicI64::new(0));
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let l = Arc::clone(&l);
                let net = Arc::clone(&net);
                handles.push(std::thread::spawn(move || {
                    let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..OPS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % KEYS + 1;
                        match x % 3 {
                            0 => {
                                if l.insert(k, k) {
                                    net.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            1 => {
                                if l.delete(k).is_some() {
                                    net.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                            _ => {
                                if let Some(v) = l.search(k) {
                                    assert_eq!(v, k, "{name}: value corrupted");
                                }
                            }
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                l.len() as i64,
                net.load(Ordering::Relaxed),
                "{name}: net count mismatch"
            );
        }
    }
}
