//! Global-lock list with non-synchronized searches (*mcs-gl-opt*, §5.1).
//!
//! "An easy optimization on the global-lock algorithm is to implement the
//! search operation so that it does not acquire the lock (given that memory
//! reclamation is properly handled). The linearization point of updates is
//! then the actual memory writes that access the predecessor node."
//!
//! Updates serialize behind one MCS lock; searches traverse lock-free and
//! rely on QSBR for safety.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use reclaim::NodePool;
use synchro::McsLock;

use crate::{assert_user_key, ConcurrentSet, Key, Val, LIST_POOL_CHUNK, TAIL_KEY};

struct Node {
    key: Key,
    val: Val,
    next: AtomicPtr<Node>,
}

impl Node {
    fn make(key: Key, val: Val, next: *mut Node) -> Self {
        Node {
            key,
            val,
            next: AtomicPtr::new(next),
        }
    }
}

/// The MCS global-lock list with lock-free searches (*mcs-gl-opt*).
///
/// Nodes come from a type-stable [`NodePool`] (magazine-cached allocation,
/// QSBR-deferred recycling); no pointer is cached across operations, so
/// recycled slots are plainly re-initialized.
pub struct GlobalLockList {
    lock: McsLock,
    head: *mut Node,
    pool: Arc<NodePool<Node>>,
}

// SAFETY: updates are serialized by the MCS lock; searches only read
// QSBR-protected nodes through atomic next pointers.
unsafe impl Send for GlobalLockList {}
unsafe impl Sync for GlobalLockList {}

impl GlobalLockList {
    /// Creates an empty list.
    pub fn new() -> Self {
        let pool = NodePool::with_chunk_capacity(LIST_POOL_CHUNK);
        let tail = pool.alloc_init(|| Node::make(TAIL_KEY, 0, std::ptr::null_mut()));
        let head = pool.alloc_init(|| Node::make(crate::HEAD_KEY, 0, tail));
        Self {
            lock: McsLock::new(),
            head,
            pool,
        }
    }

    /// Finds `(pred, cur)` with `pred.key < key <= cur.key`.
    ///
    /// # Safety
    ///
    /// Caller must be inside a QSBR grace period.
    #[inline]
    unsafe fn locate(&self, key: Key) -> (*mut Node, *mut Node) {
        // SAFETY: per contract.
        unsafe {
            let mut pred = self.head;
            let mut cur = (*pred).next.load(Ordering::Acquire);
            while (*cur).key < key {
                pred = cur;
                cur = (*cur).next.load(Ordering::Acquire);
            }
            (pred, cur)
        }
    }
}

impl Default for GlobalLockList {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentSet for GlobalLockList {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        // Lock-free: the "opt" in mcs-gl-opt.
        // SAFETY: QSBR grace period.
        unsafe {
            let (_, cur) = self.locate(key);
            ((*cur).key == key).then(|| (*cur).val)
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        reclaim::quiescent();
        self.lock.with(|| {
            // SAFETY: the global lock serializes all updates; QSBR covers
            // the traversal against... nothing can change under the lock.
            unsafe {
                let (pred, cur) = self.locate(key);
                if (*cur).key == key {
                    return false;
                }
                let newnode = self.pool.alloc_init(|| Node::make(key, val, cur));
                (*pred).next.store(newnode, Ordering::Release);
                true
            }
        })
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        self.lock.with(|| {
            // SAFETY: updates serialized by the global lock.
            unsafe {
                let (pred, cur) = self.locate(key);
                if (*cur).key != key {
                    return None;
                }
                (*pred)
                    .next
                    .store((*cur).next.load(Ordering::Relaxed), Ordering::Release);
                let val = (*cur).val;
                // SAFETY: unlinked; concurrent searches may still hold it —
                // hence retire (grace period) before the slot recycles.
                reclaim::with_local(|h| self.pool.retire(cur, h));
                Some(val)
            }
        })
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: QSBR grace period.
        unsafe {
            let mut n = 0;
            let mut cur = (*self.head).next.load(Ordering::Acquire);
            while (*cur).key != TAIL_KEY {
                n += 1;
                cur = (*cur).next.load(Ordering::Acquire);
            }
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let l = GlobalLockList::new();
        assert!(l.insert(3, 30));
        assert!(l.insert(1, 10));
        assert!(!l.insert(3, 31));
        assert_eq!(l.search(1), Some(10));
        assert_eq!(l.delete(3), Some(30));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn readers_survive_concurrent_deletes() {
        let l = Arc::new(GlobalLockList::new());
        for k in 1..=1000u64 {
            l.insert(k, k);
        }
        let mut handles = Vec::new();
        // Deleter removes everything.
        {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for k in 1..=1000u64 {
                    assert_eq!(l.delete(k), Some(k));
                }
            }));
        }
        // Readers hammer searches through the shrinking list.
        for _ in 0..6 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    for k in (1..=1000u64).step_by(97) {
                        if let Some(v) = l.search(k) {
                            assert_eq!(v, k);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(l.is_empty());
    }
}
