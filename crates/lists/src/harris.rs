//! Harris's lock-free linked list [19] (*harris* in Figure 9).
//!
//! The lock-free baseline. Deletion happens in two steps: the node's `next`
//! pointer is *marked* (its least-significant bit set) with a CAS — the
//! logical delete and linearization point — and the node is then physically
//! unlinked, either by the deleter or by any later traversal that snips out
//! chains of marked nodes while searching.
//!
//! Pointer marking uses the LSB of the `next` word; nodes are at least
//! 8-byte aligned so the bit is always free.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use reclaim::NodePool;
use synchro::Backoff;

use crate::{assert_user_key, ConcurrentSet, Key, Val, LIST_POOL_CHUNK, TAIL_KEY};

const MARK: usize = 1;

#[inline]
fn marked(p: usize) -> bool {
    p & MARK != 0
}

#[inline]
fn unmark(p: usize) -> usize {
    p & !MARK
}

pub(crate) struct Node {
    key: Key,
    val: Val,
    /// Pointer-with-mark-bit to the successor.
    next: AtomicUsize,
}

impl Node {
    fn make(key: Key, val: Val, next: *mut Node) -> Self {
        Node {
            key,
            val,
            next: AtomicUsize::new(next as usize),
        }
    }
}

/// Harris's lock-free sorted list.
///
/// Nodes come from a type-stable [`NodePool`]. QSBR already rules out ABA
/// on node addresses *within* an operation (no slot recycles while any
/// operation that saw it is still running), and no pointer survives across
/// operations, so recycled slots are plainly re-initialized.
pub struct HarrisList {
    head: *mut Node,
    pool: Arc<NodePool<Node>>,
}

// SAFETY: all mutation is CAS on the next words; reclamation is QSBR,
// and only the unlinking CAS winner retires a node.
unsafe impl Send for HarrisList {}
unsafe impl Sync for HarrisList {}

impl HarrisList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::from_pool(NodePool::with_chunk_capacity(LIST_POOL_CHUNK))
    }

    /// Creates an empty list with an arena-backed node pool.
    pub fn new_arena() -> Self {
        Self::from_pool(NodePool::arena_with_chunk_capacity(LIST_POOL_CHUNK))
    }

    fn from_pool(pool: Arc<NodePool<Node>>) -> Self {
        let tail = pool.alloc_init(|| Node::make(TAIL_KEY, 0, std::ptr::null_mut()));
        let head = pool.alloc_init(|| Node::make(crate::HEAD_KEY, 0, tail));
        Self { head, pool }
    }

    /// Harris's `search`: returns `(pred, cur)` with `pred.key < key <=
    /// cur.key`, both unmarked and adjacent at some instant — snipping out
    /// any marked chain in between (and retiring the snipped nodes).
    ///
    /// # Safety
    ///
    /// Caller must be inside a QSBR grace period.
    unsafe fn locate(&self, key: Key) -> (*mut Node, *mut Node) {
        // SAFETY: per contract; all raw derefs target grace-protected nodes.
        unsafe {
            'retry: loop {
                let mut pred = self.head;
                let mut pred_next = (*pred).next.load(Ordering::Acquire);
                // First marked node of the chain to snip (if any).
                let mut cur = unmark(pred_next) as *mut Node;
                loop {
                    // Advance over marked nodes, remembering the last
                    // unmarked predecessor.
                    let mut cur_next = (*cur).next.load(Ordering::Acquire);
                    synchro::prefetch::read(unmark(cur_next) as *const Node);
                    while marked(cur_next) {
                        cur = unmark(cur_next) as *mut Node;
                        cur_next = (*cur).next.load(Ordering::Acquire);
                        synchro::prefetch::read(unmark(cur_next) as *const Node);
                    }
                    if (*cur).key >= key {
                        // Snip the marked chain pred→...→cur if any.
                        let first = unmark(pred_next) as *mut Node;
                        if first != cur {
                            if (*pred)
                                .next
                                .compare_exchange(
                                    pred_next,
                                    cur as usize,
                                    Ordering::AcqRel,
                                    Ordering::Relaxed,
                                )
                                .is_err()
                            {
                                continue 'retry;
                            }
                            // Retire the snipped chain [first, cur).
                            let mut p = first;
                            while p != cur {
                                let next = unmark((*p).next.load(Ordering::Relaxed)) as *mut Node;
                                // SAFETY: we won the unlink CAS; sole retirer.
                                reclaim::with_local(|h| self.pool.retire(p, h));
                                p = next;
                            }
                        }
                        return (pred, cur);
                    }
                    pred = cur;
                    pred_next = cur_next;
                    cur = unmark(cur_next) as *mut Node;
                }
            }
        }
    }
}

impl Default for HarrisList {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentSet for HarrisList {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        // Read-only traversal (does not help with cleanup — matching the
        // ASCYLIB optimized variant where searches stay wait-free).
        // SAFETY: QSBR grace period.
        unsafe {
            let mut cur = self.head;
            while (*cur).key < key {
                cur = unmark((*cur).next.load(Ordering::Acquire)) as *mut Node;
                synchro::prefetch::read(cur);
            }
            // Present iff key matches and the node is not logically deleted.
            ((*cur).key == key && !marked((*cur).next.load(Ordering::Acquire))).then(|| (*cur).val)
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        // Allocate once and reuse across CAS retries.
        let newnode = self
            .pool
            .alloc_init(|| Node::make(key, val, std::ptr::null_mut()));
        loop {
            // SAFETY: QSBR grace period.
            unsafe {
                let (pred, cur) = self.locate(key);
                if (*cur).key == key {
                    // SAFETY: newnode was never published.
                    self.pool.dealloc_unpublished(newnode);
                    return false;
                }
                (*newnode).next.store(cur as usize, Ordering::Relaxed);
                if (*pred)
                    .next
                    .compare_exchange(
                        cur as usize,
                        newnode as usize,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return true;
                }
                bo.backoff();
            }
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: QSBR grace period.
            unsafe {
                let (pred, cur) = self.locate(key);
                if (*cur).key != key {
                    return None;
                }
                let cur_next = (*cur).next.load(Ordering::Acquire);
                if marked(cur_next) {
                    // Already logically deleted; help by retrying locate
                    // (which snips) and re-deciding.
                    bo.backoff();
                    continue;
                }
                // Logical delete: mark cur's next pointer.
                if (*cur)
                    .next
                    .compare_exchange(
                        cur_next,
                        cur_next | MARK,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_err()
                {
                    bo.backoff();
                    continue;
                }
                let val = (*cur).val;
                // Physical delete: try to unlink; on failure some traversal
                // will snip (and retire) it for us.
                if (*pred)
                    .next
                    .compare_exchange(
                        cur as usize,
                        cur_next, // unmarked successor
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    // SAFETY: we unlinked it; sole retirer.
                    reclaim::with_local(|h| self.pool.retire(cur, h));
                }
                return Some(val);
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: QSBR grace period.
        unsafe {
            let mut n = 0;
            let mut cur = unmark((*self.head).next.load(Ordering::Acquire)) as *mut Node;
            while (*cur).key != TAIL_KEY {
                if !marked((*cur).next.load(Ordering::Acquire)) {
                    n += 1;
                }
                cur = unmark((*cur).next.load(Ordering::Acquire)) as *mut Node;
                synchro::prefetch::read(cur);
            }
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let l = HarrisList::new();
        assert!(l.insert(6, 60));
        assert!(l.insert(3, 30));
        assert!(!l.insert(6, 61));
        assert_eq!(l.search(3), Some(30));
        assert_eq!(l.delete(6), Some(60));
        assert_eq!(l.delete(6), None);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn marked_nodes_are_invisible_to_search() {
        let l = HarrisList::new();
        assert!(l.insert(5, 50));
        // Mark the node manually (simulating a stalled deleter).
        unsafe {
            let node = unmark((*l.head).next.load(Ordering::Relaxed)) as *mut Node;
            let next = (*node).next.load(Ordering::Relaxed);
            (*node).next.store(next | MARK, Ordering::Release);
        }
        assert_eq!(l.search(5), None, "marked node must not be found");
        assert_eq!(l.len(), 0);
        // An insert of the same key must first help unlink it.
        assert!(l.insert(5, 55));
        assert_eq!(l.search(5), Some(55));
    }

    #[test]
    fn exactly_one_delete_wins() {
        let l = Arc::new(HarrisList::new());
        for round in 1..=100u64 {
            assert!(l.insert(round, round));
            let mut handles = Vec::new();
            for _ in 0..6 {
                let l = Arc::clone(&l);
                handles.push(std::thread::spawn(move || l.delete(round).is_some()));
            }
            let winners: usize = handles
                .into_iter()
                .map(|h| usize::from(h.join().unwrap()))
                .sum();
            assert_eq!(winners, 1, "round {round}");
        }
        assert!(l.is_empty());
    }

    #[test]
    fn heavy_mixed_contention_is_consistent() {
        let l = Arc::new(HarrisList::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                let mut net = 0i64;
                let mut x = t.wrapping_mul(0x2545F4914F6CDD1D) | 1;
                for _ in 0..synchro::stress::ops(30_000) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 24 + 1;
                    match x % 3 {
                        0 => {
                            if l.insert(k, k) {
                                net += 1;
                            }
                        }
                        1 => {
                            if l.delete(k).is_some() {
                                net -= 1;
                            }
                        }
                        _ => {
                            if let Some(v) = l.search(k) {
                                assert_eq!(v, k);
                            }
                        }
                    }
                }
                net
            }));
        }
        let net: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(l.len() as i64, net);
    }
}
