//! Lazy (Heller et al.) list with **node caching** (*lazy-cache*, §5.1).
//!
//! The paper notes node caching "can be also applied on non-OPTIK
//! algorithms, given that we can avoid the ABA problem and that we can
//! detect whether a node is valid". The lazy list has no version numbers,
//! so validity detection uses two ingredients:
//!
//! - the `marked` flag: deleted nodes stay marked until their slot is
//!   recycled, so a marked cached node is rejected;
//! - a per-slot **stamp** (even = stable, bumped twice around every
//!   recycle): a stamp mismatch proves the slot was reused for a different
//!   node since it was cached, defeating ABA.
//!
//! As with [`crate::OptikCacheList`], nodes live in a type-stable
//! [`reclaim::NodePool`] and recycling cannot complete within a single
//! operation (the grace period requires the operating thread to quiesce).

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use reclaim::NodePool;
use synchro::{Backoff, RawLock, TtasLock};

use crate::{assert_user_key, ConcurrentSet, Key, SetHandle, Val, TAIL_KEY};

pub(crate) struct PNode {
    key: AtomicU64,
    val: AtomicU64,
    marked: AtomicBool,
    lock: TtasLock,
    /// Recycle stamp: even while stable, bumped to odd at recycle start and
    /// back to even when re-initialization completes.
    stamp: AtomicU64,
    next: AtomicPtr<PNode>,
}

impl Default for PNode {
    fn default() -> Self {
        Self {
            key: AtomicU64::new(0),
            val: AtomicU64::new(0),
            marked: AtomicBool::new(false),
            lock: TtasLock::new(),
            stamp: AtomicU64::new(0),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct CacheSlot {
    node: *mut PNode,
    stamp: u64,
    key: Key,
}

/// The node-caching lazy list (*lazy-cache*).
pub struct LazyCacheList {
    pool: Arc<NodePool<PNode>>,
    head: *mut PNode,
}

// SAFETY: per-node locks + logical-delete flags serialize modification;
// the pool keeps node memory type-stable; QSBR defers recycling.
unsafe impl Send for LazyCacheList {}
unsafe impl Sync for LazyCacheList {}

impl LazyCacheList {
    /// Creates an empty list backed by a fresh node pool.
    pub fn new() -> Self {
        let pool = NodePool::new();
        let tail = Self::alloc_node(&pool, TAIL_KEY, 0, std::ptr::null_mut());
        let head = Self::alloc_node(&pool, crate::HEAD_KEY, 0, tail);
        Self { pool, head }
    }

    fn alloc_node(pool: &Arc<NodePool<PNode>>, key: Key, val: Val, next: *mut PNode) -> *mut PNode {
        let p = pool.alloc(PNode::default);
        // SAFETY: slot valid for the pool's lifetime.
        unsafe {
            if p.recycled {
                // Recycle protocol: stamp to odd, rewrite, stamp to even.
                (*p.ptr).stamp.fetch_add(1, Ordering::AcqRel);
            }
            (*p.ptr).key.store(key, Ordering::Relaxed);
            (*p.ptr).val.store(val, Ordering::Relaxed);
            (*p.ptr).next.store(next, Ordering::Relaxed);
            if p.recycled {
                (*p.ptr).marked.store(false, Ordering::Relaxed);
                (*p.ptr).stamp.fetch_add(1, Ordering::Release);
            }
        }
        p.ptr
    }

    /// Per-thread caching session.
    pub fn handle(&self) -> LazyCacheHandle<'_> {
        LazyCacheHandle {
            list: self,
            cached: None,
            hits: 0,
            misses: 0,
        }
    }

    fn entry_for(&self, cache: &Option<CacheSlot>, key: Key) -> Option<*mut PNode> {
        let c = (*cache)?;
        if c.key >= key {
            return None;
        }
        // SAFETY: type-stable pool memory.
        unsafe {
            let s = (*c.node).stamp.load(Ordering::Acquire);
            if s == c.stamp && s % 2 == 0 && !(*c.node).marked.load(Ordering::Acquire) {
                Some(c.node)
            } else {
                None
            }
        }
    }

    /// # Safety
    ///
    /// Caller must be inside a QSBR grace period; `start` is head or a
    /// validated cache entry.
    #[inline]
    unsafe fn locate(start: *mut PNode, key: Key) -> (*mut PNode, *mut PNode) {
        // SAFETY: per contract.
        unsafe {
            let mut pred = start;
            let mut cur = (*pred).next.load(Ordering::Acquire);
            while (*cur).key.load(Ordering::Acquire) < key {
                pred = cur;
                cur = (*cur).next.load(Ordering::Acquire);
                synchro::prefetch::read(cur);
            }
            (pred, cur)
        }
    }

    /// # Safety
    ///
    /// QSBR grace period; caller holds the relevant locks.
    #[inline]
    unsafe fn validate(pred: *mut PNode, cur: *mut PNode) -> bool {
        // SAFETY: per contract.
        unsafe {
            !(*pred).marked.load(Ordering::Acquire)
                && !(*cur).marked.load(Ordering::Acquire)
                && (*pred).next.load(Ordering::Acquire) == cur
        }
    }

    fn cache_pred(cache: &mut Option<CacheSlot>, pred: *mut PNode) {
        // SAFETY: pred is live during this op (grace period).
        unsafe {
            let stamp = (*pred).stamp.load(Ordering::Acquire);
            if stamp % 2 == 0 {
                *cache = Some(CacheSlot {
                    node: pred,
                    stamp,
                    key: (*pred).key.load(Ordering::Relaxed),
                });
            }
        }
    }

    fn search_impl(&self, cache: &mut Option<CacheSlot>, key: Key) -> (Option<Val>, bool) {
        assert_user_key(key);
        reclaim::quiescent();
        let entry = self.entry_for(cache, key);
        let hit = entry.is_some();
        // SAFETY: grace period.
        unsafe {
            let start = entry.unwrap_or(self.head);
            let (pred, cur) = Self::locate(start, key);
            Self::cache_pred(cache, pred);
            let found = ((*cur).key.load(Ordering::Relaxed) == key
                && !(*cur).marked.load(Ordering::Acquire))
            .then(|| (*cur).val.load(Ordering::Relaxed));
            (found, hit)
        }
    }

    fn insert_impl(&self, cache: &mut Option<CacheSlot>, key: Key, val: Val) -> (bool, bool) {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        let mut first_attempt_hit = None;
        loop {
            let entry = self.entry_for(cache, key);
            let hit = *first_attempt_hit.get_or_insert(entry.is_some());
            // SAFETY: grace period per attempt.
            unsafe {
                let start = entry.unwrap_or(self.head);
                let (pred, cur) = Self::locate(start, key);
                if (*cur).key.load(Ordering::Relaxed) == key {
                    if !(*cur).marked.load(Ordering::Acquire) {
                        Self::cache_pred(cache, pred);
                        return (false, hit);
                    }
                    *cache = None;
                    bo.backoff();
                    continue;
                }
                (*pred).lock.lock();
                if Self::validate(pred, cur) {
                    let newnode = Self::alloc_node(&self.pool, key, val, cur);
                    (*pred).next.store(newnode, Ordering::Release);
                    (*pred).lock.unlock();
                    Self::cache_pred(cache, pred);
                    return (true, hit);
                }
                (*pred).lock.unlock();
                *cache = None;
                bo.backoff();
            }
        }
    }

    fn delete_impl(&self, cache: &mut Option<CacheSlot>, key: Key) -> (Option<Val>, bool) {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        let mut first_attempt_hit = None;
        loop {
            let entry = self.entry_for(cache, key);
            let hit = *first_attempt_hit.get_or_insert(entry.is_some());
            // SAFETY: grace period per attempt.
            unsafe {
                let start = entry.unwrap_or(self.head);
                let (pred, cur) = Self::locate(start, key);
                if (*cur).key.load(Ordering::Relaxed) != key
                    || (*cur).marked.load(Ordering::Acquire)
                {
                    Self::cache_pred(cache, pred);
                    return (None, hit);
                }
                (*pred).lock.lock();
                (*cur).lock.lock();
                if Self::validate(pred, cur) {
                    (*cur).marked.store(true, Ordering::Release);
                    (*pred)
                        .next
                        .store((*cur).next.load(Ordering::Relaxed), Ordering::Release);
                    let val = (*cur).val.load(Ordering::Relaxed);
                    (*cur).lock.unlock();
                    (*pred).lock.unlock();
                    // SAFETY: unlinked once; recycled after grace period.
                    reclaim::with_local(|h| self.pool.retire(cur, h));
                    Self::cache_pred(cache, pred);
                    return (Some(val), hit);
                }
                (*cur).lock.unlock();
                (*pred).lock.unlock();
                *cache = None;
                bo.backoff();
            }
        }
    }
}

impl Default for LazyCacheList {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentSet for LazyCacheList {
    fn search(&self, key: Key) -> Option<Val> {
        self.search_impl(&mut None, key).0
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        self.insert_impl(&mut None, key, val).0
    }

    fn delete(&self, key: Key) -> Option<Val> {
        self.delete_impl(&mut None, key).0
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace-period traversal.
        unsafe {
            let mut n = 0;
            let mut cur = (*self.head).next.load(Ordering::Acquire);
            while (*cur).key.load(Ordering::Relaxed) != TAIL_KEY {
                if !(*cur).marked.load(Ordering::Relaxed) {
                    n += 1;
                }
                cur = (*cur).next.load(Ordering::Acquire);
            }
            n
        }
    }
}

/// Per-thread caching session on a [`LazyCacheList`].
pub struct LazyCacheHandle<'a> {
    list: &'a LazyCacheList,
    cached: Option<CacheSlot>,
    hits: u64,
    misses: u64,
}

impl LazyCacheHandle<'_> {
    /// Operations that entered through the cache.
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// Operations that started from the head.
    pub fn cache_misses(&self) -> u64 {
        self.misses
    }

    fn tally(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }
}

impl SetHandle for LazyCacheHandle<'_> {
    fn search(&mut self, key: Key) -> Option<Val> {
        let (r, hit) = self.list.search_impl(&mut self.cached, key);
        self.tally(hit);
        r
    }

    fn insert(&mut self, key: Key, val: Val) -> bool {
        let (r, hit) = self.list.insert_impl(&mut self.cached, key, val);
        self.tally(hit);
        r
    }

    fn delete(&mut self, key: Key) -> Option<Val> {
        let (r, hit) = self.list.delete_impl(&mut self.cached, key);
        self.tally(hit);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn basic_roundtrip() {
        let l = LazyCacheList::new();
        assert!(l.insert(3, 30));
        assert!(l.insert(9, 90));
        assert!(!l.insert(3, 33));
        assert_eq!(l.search(9), Some(90));
        assert_eq!(l.delete(3), Some(30));
        assert_eq!(l.delete(3), None);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn cache_hits_on_ascending_scan() {
        let l = LazyCacheList::new();
        for k in 1..=100u64 {
            l.insert(k, k);
        }
        let mut h = l.handle();
        for k in 1..=100u64 {
            assert_eq!(h.search(k), Some(k));
        }
        assert!(h.cache_hits() > 50, "hits: {}", h.cache_hits());
    }

    #[test]
    fn stale_marked_entry_is_rejected() {
        let l = LazyCacheList::new();
        for k in [10u64, 20, 30] {
            l.insert(k, k);
        }
        let mut h = l.handle();
        assert_eq!(h.search(20), Some(20)); // caches node 10
        assert_eq!(l.delete(10), Some(10)); // cached node now marked
        assert_eq!(h.search(30), Some(30)); // must start from head
        assert_eq!(h.delete(20), Some(20));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn recycled_entry_is_rejected_by_stamp() {
        let l = LazyCacheList::new();
        l.insert(10, 100);
        let mut h = l.handle();
        assert_eq!(h.search(50), None); // caches node 10
        assert_eq!(l.delete(10), Some(100));
        // Churn so the slot gets recycled with a different key.
        for r in 0..300u64 {
            let k = 1000 + r;
            l.insert(k, k);
            l.delete(k);
        }
        assert_eq!(h.search(10), None);
        assert!(h.insert(10, 101));
        assert_eq!(h.search(10), Some(101));
    }

    #[test]
    fn concurrent_caching_handles_consistent() {
        let l = StdArc::new(LazyCacheList::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let l = StdArc::clone(&l);
            handles.push(std::thread::spawn(move || {
                let mut h = l.handle();
                let mut net = 0i64;
                let mut x = t.wrapping_mul(0xD1342543DE82EF95) | 1;
                for _ in 0..synchro::stress::ops(20_000) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 48 + 1;
                    match x % 3 {
                        0 => {
                            if h.insert(k, k * 9) {
                                net += 1;
                            }
                        }
                        1 => {
                            if h.delete(k).is_some() {
                                net -= 1;
                            }
                        }
                        _ => {
                            if let Some(v) = h.search(k) {
                                assert_eq!(v, k * 9);
                            }
                        }
                    }
                }
                net
            }));
        }
        let net: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(l.len() as i64, net);
    }
}
