//! Sequential sorted linked list: baseline and oracle.

use std::cell::UnsafeCell;

use crate::{assert_user_key, ConcurrentSet, Key, Val};

struct Node {
    key: Key,
    val: Val,
    next: Option<Box<Node>>,
}

/// A plain single-threaded sorted list.
///
/// Implements [`ConcurrentSet`] for interface uniformity, but concurrent use
/// must be externally serialized (it is the oracle for the cross tests and
/// the "what the concurrent lists are derived from" baseline of §5.1).
pub struct SeqList {
    head: UnsafeCell<Option<Box<Node>>>,
    len: UnsafeCell<usize>,
}

// SAFETY: users serialize access externally (struct contract).
unsafe impl Send for SeqList {}
unsafe impl Sync for SeqList {}

impl SeqList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            head: UnsafeCell::new(None),
            len: UnsafeCell::new(0),
        }
    }

    #[allow(clippy::mut_from_ref)]
    fn head_mut(&self) -> &mut Option<Box<Node>> {
        // SAFETY: externally serialized (struct contract).
        unsafe { &mut *self.head.get() }
    }
}

impl Default for SeqList {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentSet for SeqList {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        let mut cur = self.head_mut().as_deref();
        while let Some(n) = cur {
            if n.key >= key {
                return (n.key == key).then_some(n.val);
            }
            cur = n.next.as_deref();
        }
        None
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        let mut slot = self.head_mut();
        loop {
            match slot {
                Some(n) if n.key < key => {
                    // Move to the next link.
                    slot = &mut slot.as_mut().expect("checked Some").next;
                }
                Some(n) if n.key == key => return false,
                _ => {
                    let next = slot.take();
                    *slot = Some(Box::new(Node { key, val, next }));
                    // SAFETY: externally serialized.
                    unsafe { *self.len.get() += 1 };
                    return true;
                }
            }
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        let mut slot = self.head_mut();
        loop {
            match slot {
                Some(n) if n.key < key => {
                    slot = &mut slot.as_mut().expect("checked Some").next;
                }
                Some(n) if n.key == key => {
                    let mut removed = slot.take().expect("checked Some");
                    *slot = removed.next.take();
                    // SAFETY: externally serialized.
                    unsafe { *self.len.get() -= 1 };
                    return Some(removed.val);
                }
                _ => return None,
            }
        }
    }

    fn len(&self) -> usize {
        // SAFETY: externally serialized.
        unsafe { *self.len.get() }
    }
}

impl Drop for SeqList {
    fn drop(&mut self) {
        // Iterative teardown: avoid recursive Box drops on long lists.
        let mut cur = self.head_mut().take();
        while let Some(mut n) = cur {
            cur = n.next.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_sorted_order_internally() {
        let l = SeqList::new();
        for k in [5u64, 1, 9, 3, 7] {
            assert!(l.insert(k, k * 10));
        }
        // Walk and check sortedness.
        let mut cur = l.head_mut().as_deref();
        let mut prev = 0;
        while let Some(n) = cur {
            assert!(n.key > prev);
            prev = n.key;
            cur = n.next.as_deref();
        }
        assert_eq!(prev, 9);
    }

    #[test]
    fn long_list_drop_does_not_overflow_stack() {
        let l = SeqList::new();
        // Descending keys: every insert lands at the head (O(1)), so
        // building the 200k-node list is linear instead of quadratic.
        for k in (1..=200_000u64).rev() {
            assert!(l.insert(k, k));
        }
        drop(l); // must not blow the stack
    }

    proptest! {
        #[test]
        fn matches_btreemap(ops in proptest::collection::vec(
            (0u8..3, 1u64..100), 1..300))
        {
            let l = SeqList::new();
            let mut model = std::collections::BTreeMap::new();
            for (op, k) in ops {
                match op {
                    0 => {
                        let expect = !model.contains_key(&k);
                        if expect { model.insert(k, k); }
                        prop_assert_eq!(l.insert(k, k), expect);
                    }
                    1 => prop_assert_eq!(l.delete(k), model.remove(&k)),
                    _ => prop_assert_eq!(l.search(k), model.get(&k).copied()),
                }
                prop_assert_eq!(l.len(), model.len());
            }
        }
    }
}
