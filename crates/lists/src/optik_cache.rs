//! Fine-grained OPTIK list with **node caching** (*optik-cache*, §5.1).
//!
//! "Inspired by the fact that version numbers reveal whether a list node
//! has been modified, we develop the idea of node caching. Each thread
//! keeps track of the last accessed node after each operation, accompanied
//! by the version number that the thread observed. This node can be
//! subsequently used as the entry point for the next operation."
//!
//! A cached `(node, version)` pair is usable iff (i) the node's version is
//! unchanged and unlocked — deleted nodes keep their OPTIK lock *locked
//! forever* and recycled nodes get a strictly larger version, so both are
//! rejected — and (ii) the cached key is smaller than the target key.
//!
//! Nodes live in a type-stable [`reclaim::NodePool`], so dereferencing a
//! stale cached pointer is always a read of a valid node; every node field
//! is atomic because slot recycling re-initializes memory that stale
//! validators may be reading concurrently. Within a single operation,
//! recycling is impossible (the QSBR grace period cannot elapse before the
//! operating thread's next quiescent point), so traversals behave exactly
//! like the plain [`crate::OptikList`].

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use optik::{OptikLock, OptikVersioned, Version};
use reclaim::NodePool;
use synchro::Backoff;

use crate::{assert_user_key, ConcurrentSet, Key, SetHandle, Val, TAIL_KEY};

pub(crate) struct PNode {
    key: AtomicU64,
    val: AtomicU64,
    lock: OptikVersioned,
    next: AtomicPtr<PNode>,
}

impl Default for PNode {
    fn default() -> Self {
        Self {
            key: AtomicU64::new(0),
            val: AtomicU64::new(0),
            lock: OptikVersioned::new(),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// A cached traversal entry point.
#[derive(Clone, Copy, Debug)]
struct CacheSlot {
    node: *mut PNode,
    version: Version,
    key: Key,
}

/// The node-caching fine-grained OPTIK list (*optik-cache*).
pub struct OptikCacheList {
    pool: Arc<NodePool<PNode>>,
    head: *mut PNode,
}

// SAFETY: per-node OPTIK locks serialize modification; the pool keeps all
// node memory type-stable; QSBR defers recycling across grace periods.
unsafe impl Send for OptikCacheList {}
unsafe impl Sync for OptikCacheList {}

impl OptikCacheList {
    /// Creates an empty list backed by a fresh node pool.
    pub fn new() -> Self {
        let pool = NodePool::new();
        let tail = Self::alloc_node(&pool, TAIL_KEY, 0, std::ptr::null_mut());
        let head = Self::alloc_node(&pool, crate::HEAD_KEY, 0, tail);
        Self { pool, head }
    }

    /// Allocates and initializes a node; recycled slots are re-initialized
    /// through their atomics and *unlocked* (bumping the version past every
    /// cached observation of the previous occupant).
    fn alloc_node(pool: &Arc<NodePool<PNode>>, key: Key, val: Val, next: *mut PNode) -> *mut PNode {
        let p = pool.alloc(PNode::default);
        // SAFETY: the slot is valid for the pool's lifetime.
        unsafe {
            (*p.ptr).key.store(key, Ordering::Relaxed);
            (*p.ptr).val.store(val, Ordering::Relaxed);
            (*p.ptr).next.store(next, Ordering::Relaxed);
            if p.recycled {
                // The previous occupant was deleted with its lock held
                // forever; unlocking publishes a fresh, larger version.
                debug_assert!((*p.ptr).lock.is_locked());
                (*p.ptr).lock.unlock();
            }
        }
        p.ptr
    }

    /// Per-thread session with a node cache. Operations through the handle
    /// use and refresh the cache; the paper reports ~40–50% hit rates.
    pub fn handle(&self) -> OptikCacheHandle<'_> {
        OptikCacheHandle {
            list: self,
            cached: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Validated entry point for a traversal towards `key`.
    fn entry_for(&self, cache: &Option<CacheSlot>, key: Key) -> Option<(*mut PNode, Version)> {
        let c = (*cache)?;
        if c.key >= key {
            return None;
        }
        // SAFETY: type-stable pool memory — always a valid PNode.
        let v = unsafe { (*c.node).lock.get_version() };
        // Same version ⟹ not deleted (deleted ⇒ locked forever) and not
        // recycled (recycle bumps) and key/next unmodified since observed.
        if !OptikVersioned::is_locked_version(v) && v == c.version {
            Some((c.node, v))
        } else {
            None
        }
    }

    /// Hand-over-hand version-tracking traversal from `start`.
    ///
    /// # Safety
    ///
    /// Caller must be inside a QSBR grace period and `start` must be
    /// head or a validated cache entry.
    #[inline]
    unsafe fn locate_tracking(
        start: *mut PNode,
        start_v: Version,
        key: Key,
    ) -> (*mut PNode, Version, *mut PNode, Version) {
        // SAFETY: within a grace period no reachable node is recycled.
        unsafe {
            let mut pred;
            let mut predv;
            let mut cur = start;
            let mut curv = start_v;
            loop {
                pred = cur;
                predv = curv;
                cur = (*pred).next.load(Ordering::Acquire);
                synchro::prefetch::read(cur);
                curv = (*cur).lock.get_version();
                if (*cur).key.load(Ordering::Acquire) >= key {
                    return (pred, predv, cur, curv);
                }
            }
        }
    }

    fn search_impl(&self, cache: &mut Option<CacheSlot>, key: Key) -> (Option<Val>, bool) {
        assert_user_key(key);
        reclaim::quiescent();
        let entry = self.entry_for(cache, key);
        let hit = entry.is_some();
        // SAFETY: grace period; entry validated or head.
        unsafe {
            let (start, start_v) = entry.unwrap_or_else(|| {
                let h = self.head;
                (h, (*h).lock.get_version())
            });
            let (pred, predv, cur, _curv) = Self::locate_tracking(start, start_v, key);
            *cache = Some(CacheSlot {
                node: pred,
                version: predv,
                key: (*pred).key.load(Ordering::Relaxed),
            });
            let found = ((*cur).key.load(Ordering::Relaxed) == key)
                .then(|| (*cur).val.load(Ordering::Relaxed));
            (found, hit)
        }
    }

    fn insert_impl(&self, cache: &mut Option<CacheSlot>, key: Key, val: Val) -> (bool, bool) {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        let mut first_attempt_hit = None;
        loop {
            let entry = self.entry_for(cache, key);
            let hit = *first_attempt_hit.get_or_insert(entry.is_some());
            // SAFETY: grace period for this attempt.
            unsafe {
                let (start, start_v) = entry.unwrap_or_else(|| {
                    let h = self.head;
                    (h, (*h).lock.get_version())
                });
                let (pred, predv, cur, _curv) = Self::locate_tracking(start, start_v, key);
                if (*cur).key.load(Ordering::Relaxed) == key {
                    *cache = Some(CacheSlot {
                        node: pred,
                        version: predv,
                        key: (*pred).key.load(Ordering::Relaxed),
                    });
                    return (false, hit);
                }
                if !(*pred).lock.try_lock_version(predv) {
                    // A failed validation may mean the cached entry went
                    // stale mid-path; drop it for the retry.
                    *cache = None;
                    bo.backoff();
                    continue;
                }
                let newnode = Self::alloc_node(&self.pool, key, val, cur);
                (*pred).next.store(newnode, Ordering::Release);
                (*pred).lock.unlock();
                // Cache the predecessor at its new (post-unlock) version.
                let predv_now = (*pred).lock.get_version();
                *cache = Some(CacheSlot {
                    node: pred,
                    version: predv_now,
                    key: (*pred).key.load(Ordering::Relaxed),
                });
                return (true, hit);
            }
        }
    }

    fn delete_impl(&self, cache: &mut Option<CacheSlot>, key: Key) -> (Option<Val>, bool) {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        let mut first_attempt_hit = None;
        loop {
            let entry = self.entry_for(cache, key);
            let hit = *first_attempt_hit.get_or_insert(entry.is_some());
            // SAFETY: grace period for this attempt.
            unsafe {
                let (start, start_v) = entry.unwrap_or_else(|| {
                    let h = self.head;
                    (h, (*h).lock.get_version())
                });
                let (pred, predv, cur, curv) = Self::locate_tracking(start, start_v, key);
                if (*cur).key.load(Ordering::Relaxed) != key {
                    *cache = Some(CacheSlot {
                        node: pred,
                        version: predv,
                        key: (*pred).key.load(Ordering::Relaxed),
                    });
                    return (None, hit);
                }
                if !(*pred).lock.try_lock_version(predv) {
                    *cache = None;
                    bo.backoff();
                    continue;
                }
                if !(*cur).lock.try_lock_version(curv) {
                    (*pred).lock.revert();
                    *cache = None;
                    bo.backoff();
                    continue;
                }
                // cur's lock stays locked forever (until slot recycling).
                (*pred)
                    .next
                    .store((*cur).next.load(Ordering::Relaxed), Ordering::Release);
                let val = (*cur).val.load(Ordering::Relaxed);
                (*pred).lock.unlock();
                // SAFETY: unlinked once; pool-retire (type-stable recycle).
                reclaim::with_local(|h| self.pool.retire(cur, h));
                let predv_now = (*pred).lock.get_version();
                *cache = Some(CacheSlot {
                    node: pred,
                    version: predv_now,
                    key: (*pred).key.load(Ordering::Relaxed),
                });
                return (Some(val), hit);
            }
        }
    }

    /// Pool statistics: `(allocations, recycle hits)` — used by the
    /// node-cache ablation bench.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.allocations(), self.pool.recycle_hits())
    }
}

impl Default for OptikCacheList {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentSet for OptikCacheList {
    fn search(&self, key: Key) -> Option<Val> {
        self.search_impl(&mut None, key).0
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        self.insert_impl(&mut None, key, val).0
    }

    fn delete(&self, key: Key) -> Option<Val> {
        self.delete_impl(&mut None, key).0
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace-period traversal.
        unsafe {
            let mut n = 0;
            let mut cur = (*self.head).next.load(Ordering::Acquire);
            while (*cur).key.load(Ordering::Relaxed) != TAIL_KEY {
                n += 1;
                cur = (*cur).next.load(Ordering::Acquire);
            }
            n
        }
    }
}

/// Per-thread session on an [`OptikCacheList`] holding the node cache.
pub struct OptikCacheHandle<'a> {
    list: &'a OptikCacheList,
    cached: Option<CacheSlot>,
    hits: u64,
    misses: u64,
}

impl OptikCacheHandle<'_> {
    /// Cache hits observed so far (operations that entered via the cache).
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (operations that entered from the head).
    pub fn cache_misses(&self) -> u64 {
        self.misses
    }

    fn tally(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }
}

impl SetHandle for OptikCacheHandle<'_> {
    fn search(&mut self, key: Key) -> Option<Val> {
        let (r, hit) = self.list.search_impl(&mut self.cached, key);
        self.tally(hit);
        r
    }

    fn insert(&mut self, key: Key, val: Val) -> bool {
        let (r, hit) = self.list.insert_impl(&mut self.cached, key, val);
        self.tally(hit);
        r
    }

    fn delete(&mut self, key: Key) -> Option<Val> {
        let (r, hit) = self.list.delete_impl(&mut self.cached, key);
        self.tally(hit);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn basic_roundtrip_without_cache() {
        let l = OptikCacheList::new();
        assert!(l.insert(3, 30));
        assert!(l.insert(7, 70));
        assert!(!l.insert(3, 31));
        assert_eq!(l.search(7), Some(70));
        assert_eq!(l.delete(3), Some(30));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn handle_cache_hits_on_ascending_access() {
        let l = OptikCacheList::new();
        for k in 1..=100u64 {
            l.insert(k, k);
        }
        let mut h = l.handle();
        // Ascending searches: each op's predecessor is a valid entry for
        // the next (key grows).
        for k in 1..=100u64 {
            assert_eq!(h.search(k), Some(k));
        }
        assert!(
            h.cache_hits() > 50,
            "ascending scan should mostly hit: {} hits / {} misses",
            h.cache_hits(),
            h.cache_misses()
        );
    }

    #[test]
    fn cache_rejects_deleted_entry_node() {
        let l = OptikCacheList::new();
        for k in [10u64, 20, 30] {
            l.insert(k, k);
        }
        let mut h = l.handle();
        // Search caches pred (node 10); delete it through another path.
        assert_eq!(h.search(20), Some(20));
        assert_eq!(l.delete(10), Some(10));
        // The next op must not trust the stale entry (deleted ⇒ locked).
        assert_eq!(h.search(30), Some(30));
        assert_eq!(h.delete(20), Some(20));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn cache_rejects_recycled_entry_node() {
        let l = OptikCacheList::new();
        l.insert(10, 100);
        let mut h = l.handle();
        // Search caches node 10; delete it and churn enough allocations to
        // recycle its slot.
        assert_eq!(h.search(15), None);
        assert_eq!(l.delete(10), Some(100));
        for r in 0..200u64 {
            let k = 1000 + r;
            l.insert(k, k);
            l.delete(k);
        }
        // Handle must still work correctly whatever happened to the slot.
        assert_eq!(h.search(10), None);
        assert!(h.insert(10, 101));
        assert_eq!(h.search(10), Some(101));
    }

    #[test]
    fn pool_recycles_slots() {
        // Recycling needs a QSBR grace period; other tests in this binary
        // share the global domain and may briefly stall it (threads blocked
        // in join), so churn until recycling is observed, with a generous
        // deadline.
        let l = OptikCacheList::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        loop {
            for round in 0..500u64 {
                let k = round % 10 + 1;
                l.insert(k, k);
                l.delete(k);
            }
            reclaim::with_local(|h| {
                h.flush();
                h.collect();
            });
            let (allocs, recycles) = l.pool_stats();
            assert!(allocs >= 500);
            if recycles > 0 {
                return;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no slot was ever recycled"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn concurrent_handles_with_caches_are_consistent() {
        let l = StdArc::new(OptikCacheList::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let l = StdArc::clone(&l);
            handles.push(std::thread::spawn(move || {
                let mut h = l.handle();
                let mut net = 0i64;
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for _ in 0..synchro::stress::ops(20_000) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 48 + 1;
                    match x % 3 {
                        0 => {
                            if h.insert(k, k * 5) {
                                net += 1;
                            }
                        }
                        1 => {
                            if h.delete(k).is_some() {
                                net -= 1;
                            }
                        }
                        _ => {
                            if let Some(v) = h.search(k) {
                                assert_eq!(v, k * 5, "corrupted value for {k}");
                            }
                        }
                    }
                }
                net
            }));
        }
        let net: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(l.len() as i64, net);
    }
}
