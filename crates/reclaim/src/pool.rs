//! Type-stable node pool.
//!
//! `ssmem`, the allocator the paper's structures use, is *type stable*:
//! memory handed out for nodes of one structure is only ever recycled as
//! nodes of the same structure, and is never unmapped while the allocator
//! lives. The paper's node-caching optimization (§5.1) depends on this:
//! a thread may keep a `(node pointer, version)` pair *across* operations,
//! i.e. across quiescent points, and dereference it later. QSBR alone would
//! make that a use-after-free; with a type-stable pool the dereference is
//! always a read of a valid node, and OPTIK version validation rejects any
//! node that was recycled in between.
//!
//! # Contract for pooled node types
//!
//! - `T` must not implement a meaningful `Drop` (asserted at construction):
//!   slot contents are abandoned in place on recycle and at pool teardown.
//! - Any field of `T` that a stale reader might inspect must be an atomic,
//!   because recycling re-initializes slots through shared references while
//!   stale readers may race with it. The pool returns `&T`; all mutation of
//!   recycled slots therefore *has* to go through interior mutability.
//! - Returning a slot to the pool must go through [`NodePool::retire`]
//!   (grace period first) unless the node was never published, in which case
//!   [`NodePool::dealloc_unpublished`] is allowed.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use synchro::{Lock, TtasLock};

use crate::domain::{QsbrHandle, RetireCtx};

/// Default number of node slots per chunk.
pub const DEFAULT_CHUNK_CAPACITY: usize = 1024;

#[repr(transparent)]
struct Slot<T>(UnsafeCell<MaybeUninit<T>>);

struct PoolInner<T> {
    /// Owning storage; never shrinks while the pool lives (type stability).
    chunks: Vec<Box<[Slot<T>]>>,
    /// Recycled slots ready for reuse.
    free: Vec<*mut T>,
    /// Bump cursor into the last chunk.
    bump: usize,
    chunk_capacity: usize,
}

// SAFETY: the raw pointers in `free` all point into `chunks`, which the pool
// owns; the surrounding spinlock serializes all structural access.
unsafe impl<T: Send> Send for PoolInner<T> {}

/// A type-stable arena allocator for concurrent data-structure nodes.
pub struct NodePool<T> {
    inner: Lock<PoolInner<T>, TtasLock>,
    allocated: AtomicU64,
    recycled: AtomicU64,
}

// SAFETY: `inner` is lock-protected; counters are atomics. `T: Send + Sync`
// because slots are shared across threads as `&T`.
unsafe impl<T: Send + Sync> Send for NodePool<T> {}
unsafe impl<T: Send + Sync> Sync for NodePool<T> {}

/// A pointer freshly handed out by [`NodePool::alloc`].
#[derive(Debug)]
pub struct PooledPtr<T> {
    /// The slot. Valid (and type-stable) for the pool's lifetime.
    pub ptr: *mut T,
    /// `false` if the slot is brand new (initialized from `make_fresh`),
    /// `true` if it is a recycled slot whose previous contents are still in
    /// place — the caller must re-initialize every field through atomics.
    pub recycled: bool,
}

impl<T: Send + Sync + 'static> NodePool<T> {
    /// Creates a pool with the default chunk capacity.
    pub fn new() -> Arc<Self> {
        Self::with_chunk_capacity(DEFAULT_CHUNK_CAPACITY)
    }

    /// Creates a pool allocating `chunk_capacity` slots at a time.
    ///
    /// # Panics
    ///
    /// Panics if `T` needs drop (pooled nodes must be plain data + atomics)
    /// or if `chunk_capacity` is zero.
    pub fn with_chunk_capacity(chunk_capacity: usize) -> Arc<Self> {
        assert!(
            !std::mem::needs_drop::<T>(),
            "NodePool requires nodes without Drop glue"
        );
        assert!(chunk_capacity > 0, "chunk capacity must be positive");
        Arc::new(Self {
            inner: Lock::new(PoolInner {
                chunks: Vec::new(),
                free: Vec::new(),
                bump: chunk_capacity, // forces a chunk on first alloc
                chunk_capacity,
            }),
            allocated: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
        })
    }

    /// Allocates a slot. Fresh slots are initialized with `make_fresh`;
    /// recycled slots are returned as-is (see [`PooledPtr::recycled`]).
    pub fn alloc(&self, make_fresh: impl FnOnce() -> T) -> PooledPtr<T> {
        self.allocated.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if let Some(ptr) = inner.free.pop() {
            self.recycled.fetch_add(1, Ordering::Relaxed);
            return PooledPtr {
                ptr,
                recycled: true,
            };
        }
        if inner.bump == inner.chunk_capacity {
            let cap = inner.chunk_capacity;
            let chunk: Box<[Slot<T>]> = (0..cap)
                .map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit())))
                .collect();
            inner.chunks.push(chunk);
            inner.bump = 0;
        }
        let idx = inner.bump;
        inner.bump += 1;
        let chunk = inner.chunks.last().expect("chunk pushed above");
        let ptr = chunk[idx].0.get().cast::<T>();
        drop(inner);
        // SAFETY: the slot is brand new: no other thread has seen it.
        unsafe { ptr.write(make_fresh()) };
        PooledPtr {
            ptr,
            recycled: false,
        }
    }

    /// Returns `ptr` to the free list after a QSBR grace period.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from this pool's [`NodePool::alloc`], must be
    /// unreachable to *new* readers (unlinked), and must not be retired
    /// twice.
    pub unsafe fn retire(self: &Arc<Self>, ptr: *mut T, handle: &QsbrHandle) {
        unsafe fn recycle<T: Send + Sync + 'static>(p: *mut u8, ctx: Option<RetireCtx>) {
            let pool = ctx
                .expect("pool retire always carries ctx")
                .downcast::<NodePool<T>>()
                .expect("ctx is the originating pool");
            pool.inner.lock().free.push(p.cast::<T>());
        }
        // SAFETY: after the grace period the slot has no in-operation
        // readers with *liveness* expectations; pushing it on the free list
        // does not overwrite its contents, so even stale cached pointers
        // (node caching) keep reading a valid `T`.
        unsafe {
            handle.retire_with(
                ptr.cast::<u8>(),
                recycle::<T>,
                Some(Arc::clone(self) as RetireCtx),
            )
        };
    }

    /// Immediately returns a never-published slot to the free list.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from this pool's [`NodePool::alloc`] and must
    /// never have been made reachable from any shared structure.
    pub unsafe fn dealloc_unpublished(&self, ptr: *mut T) {
        self.inner.lock().free.push(ptr);
    }

    /// Total slots handed out (fresh + recycled) so far.
    pub fn allocations(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// How many allocations were served from recycled slots.
    pub fn recycle_hits(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// Slots currently sitting on the free list.
    pub fn free_len(&self) -> usize {
        self.inner.lock().free.len()
    }

    /// Total slot capacity currently reserved from the OS.
    pub fn capacity(&self) -> usize {
        let inner = self.inner.lock();
        inner.chunks.len() * inner.chunk_capacity
    }
}

impl<T> std::fmt::Debug for NodePool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodePool")
            .field("allocated", &self.allocated.load(Ordering::Relaxed))
            .field("recycled", &self.recycled.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Qsbr;

    #[derive(Default)]
    struct Node {
        key: AtomicU64,
    }

    #[test]
    fn fresh_allocations_bump_through_chunks() {
        let pool: Arc<NodePool<Node>> = NodePool::with_chunk_capacity(4);
        let mut ptrs = Vec::new();
        for i in 0..10u64 {
            let p = pool.alloc(Node::default);
            assert!(!p.recycled);
            // SAFETY: fresh slot, valid for pool lifetime.
            unsafe { (*p.ptr).key.store(i, Ordering::Relaxed) };
            ptrs.push(p.ptr);
        }
        // Three chunks of four.
        assert_eq!(pool.capacity(), 12);
        // All pointers distinct.
        let mut sorted = ptrs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        // Contents intact.
        for (i, p) in ptrs.iter().enumerate() {
            // SAFETY: slots live as long as the pool.
            assert_eq!(unsafe { (**p).key.load(Ordering::Relaxed) }, i as u64);
        }
    }

    #[test]
    fn retire_recycles_after_grace_period() {
        let domain = Qsbr::new();
        let h = domain.register();
        let pool: Arc<NodePool<Node>> = NodePool::with_chunk_capacity(8);

        let p = pool.alloc(Node::default);
        // SAFETY: p came from this pool and was never published.
        unsafe { pool.retire(p.ptr, &h) };
        h.flush();
        h.quiescent();
        h.collect();
        assert_eq!(pool.free_len(), 1);

        let q = pool.alloc(Node::default);
        assert!(q.recycled);
        assert_eq!(q.ptr, p.ptr, "recycled slot is the retired one");
        drop(h);
    }

    #[test]
    fn dealloc_unpublished_skips_grace_period() {
        let pool: Arc<NodePool<Node>> = NodePool::with_chunk_capacity(8);
        let p = pool.alloc(Node::default);
        // SAFETY: never published.
        unsafe { pool.dealloc_unpublished(p.ptr) };
        assert_eq!(pool.free_len(), 1);
        let q = pool.alloc(Node::default);
        assert!(q.recycled);
        assert_eq!(q.ptr, p.ptr);
    }

    #[test]
    fn type_stability_stale_reader_sees_valid_node() {
        // A "stale" pointer kept across retire + recycle still reads a valid
        // Node (this is exactly what node caching does).
        let domain = Qsbr::new();
        let h = domain.register();
        let pool: Arc<NodePool<Node>> = NodePool::with_chunk_capacity(8);

        let p = pool.alloc(Node::default);
        // SAFETY: fresh slot.
        unsafe { (*p.ptr).key.store(7, Ordering::Relaxed) };
        let stale = p.ptr;

        // SAFETY: unlinked (never published in this test).
        unsafe { pool.retire(p.ptr, &h) };
        h.flush();
        h.quiescent();
        h.collect();
        let q = pool.alloc(Node::default);
        assert_eq!(q.ptr, stale);
        // SAFETY: type-stable — stale pointer still addresses a Node.
        unsafe { (*q.ptr).key.store(99, Ordering::Relaxed) };
        // The stale reader observes the *new* contents — detectable via the
        // version validation the data structures layer adds.
        // SAFETY: as above.
        assert_eq!(unsafe { (*stale).key.load(Ordering::Relaxed) }, 99);
        drop(h);
    }

    #[test]
    fn concurrent_alloc_retire_is_balanced() {
        let domain = Qsbr::new();
        let pool: Arc<NodePool<Node>> = NodePool::with_chunk_capacity(128);
        const THREADS: usize = 8;
        const OPS: usize = 10_000;

        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let domain = Arc::clone(&domain);
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let h = domain.register();
                for i in 0..OPS {
                    let p = pool.alloc(Node::default);
                    // SAFETY: we are the only publisher of this slot.
                    unsafe { (*p.ptr).key.store(i as u64, Ordering::Release) };
                    // SAFETY: unlinked, retired once.
                    unsafe { pool.retire(p.ptr, &h) };
                    h.quiescent();
                }
                h.flush();
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(pool.allocations(), (THREADS * OPS) as u64);
        // Recycling must have happened (the pool would otherwise hold
        // THREADS*OPS slots).
        assert!(pool.capacity() < THREADS * OPS);
    }

    #[test]
    #[should_panic(expected = "chunk capacity")]
    fn zero_chunk_capacity_panics() {
        let _ = NodePool::<Node>::with_chunk_capacity(0);
    }
}
