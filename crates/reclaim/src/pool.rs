//! Type-stable node pool with per-thread magazine caches.
//!
//! `ssmem`, the allocator the paper's structures use, is *type stable*
//! (§5.1): memory handed out for nodes of one structure is only ever
//! recycled as nodes of the same structure, and is never unmapped while the
//! allocator lives. The paper's node-caching optimization depends on this:
//! a thread may keep a `(node pointer, version)` pair *across* operations,
//! i.e. across quiescent points, and dereference it later. QSBR alone would
//! make that a use-after-free; with a type-stable pool the dereference is
//! always a read of a valid node, and OPTIK version validation rejects any
//! node that was recycled in between.
//!
//! ssmem is also *per-thread*: its hot path touches only thread-local free
//! lists, so allocation never contends. This pool reproduces that shape
//! with **magazines** (Bonwick's term): each thread owns a small cache of
//! free slots it allocates from and releases into with no locks and no
//! shared-cacheline traffic on the hit path. Magazines exchange whole
//! batches with a per-pool **depot** under the pool lock, so one lock
//! acquisition is amortized over `magazine_capacity` (default 64) node
//! operations; chunk growth (fresh slots) is batched the same way.
//!
//! ```text
//!  thread A            thread B               depot (pool lock)
//!  ┌──────────┐        ┌──────────┐        ┌───────────────────────┐
//!  │ loaded   │ pop/   │ loaded   │        │ full magazines  [64]* │
//!  │ prev     │ push   │ prev     │  ⇄     │ spare (empty) buffers │
//!  │ fresh    │        │ fresh    │ batch  │ bump region (chunks)  │
//!  └──────────┘        └──────────┘        └───────────────────────┘
//! ```
//!
//! Recycling still goes through QSBR: [`NodePool::retire`] hands the slot
//! to the domain, and only the post-grace reclamation callback pushes it
//! into the collecting thread's magazine (`in_grace` tracks the slots in
//! flight). A slot is therefore always in exactly one place: live, in one
//! thread's magazine, in the depot, or awaiting grace — the conservation
//! ledger the property tests check.
//!
//! # Contract for pooled node types
//!
//! - `T` must not implement a meaningful `Drop` (asserted at construction):
//!   slot contents are abandoned in place on recycle and at pool teardown.
//! - Any field of `T` that a *stale* reader (a cross-operation cached
//!   pointer, as in node caching) might inspect must be an atomic, because
//!   recycling re-initializes slots through shared references while stale
//!   readers may race with it. Structures that never hold node pointers
//!   across operations have no stale readers and may use
//!   [`NodePool::alloc_init`], which plainly overwrites the whole slot.
//! - Returning a slot to the pool must go through [`NodePool::retire`]
//!   (grace period first) unless the node was never published, in which case
//!   [`NodePool::dealloc_unpublished`] is allowed.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use synchro::{shim, CachePadded, Lock, TtasLock};

// The process-wide thread-index registry lives in `optik-probe` (the probe
// keys its per-thread counter slabs by the same indices as the magazines).
// Exited threads' indices — and the magazine contents filed under them —
// are inherited by later threads; `thread_index()` is `None` only during
// TLS teardown, where callers fall back to the pool lock.
use optik_probe::thread_index;

use crate::arena::{ArenaStats, FreeStore, Slab};
use crate::domain::{QsbrHandle, RetireCtx, MAX_THREADS};

/// Default number of node slots per chunk.
pub const DEFAULT_CHUNK_CAPACITY: usize = 1024;

/// Default number of slots per per-thread magazine (the depot exchange
/// batch size; ssmem uses 64-object free-list chains the same way).
pub const DEFAULT_MAGAZINE_CAPACITY: usize = 64;

// ---------------------------------------------------------------------------
// Magazines.
// ---------------------------------------------------------------------------

/// The calling thread's private slot caches for one pool. Only the thread
/// currently holding the matching registry index touches `cache`; the
/// counters are owner-written (plain store, no RMW) and racily read by
/// [`NodePool::stats`].
struct MagazineSlot<T> {
    cache: UnsafeCell<ThreadCache<T>>,
    /// Total allocations served through this magazine.
    allocs: AtomicU64,
    /// Allocations that returned a recycled slot.
    recycled: AtomicU64,
    /// Allocations that had to take the pool lock (depot/bump exchange).
    slow: AtomicU64,
    /// Slots currently parked in `cache` (all three stacks).
    cached: AtomicU64,
}

// SAFETY: `cache` is only accessed by the registry-index owner (exclusive
// among live threads); counters are atomics.
unsafe impl<T: Send> Send for MagazineSlot<T> {}
unsafe impl<T: Send> Sync for MagazineSlot<T> {}

struct ThreadCache<T> {
    /// Recycled slots, allocated from first (warm cache lines).
    loaded: Vec<*mut T>,
    /// Second magazine (Bonwick's two-magazine scheme): keeps a thread
    /// that oscillates around a magazine boundary from hitting the depot
    /// on every operation.
    prev: Vec<*mut T>,
    /// Bump-allocated slots that were never initialized; kept apart from
    /// the recycled stacks so `alloc` knows whether `make_fresh` must run.
    fresh: Vec<*mut T>,
}

impl<T> MagazineSlot<T> {
    fn new() -> Self {
        Self {
            cache: UnsafeCell::new(ThreadCache {
                loaded: Vec::new(),
                prev: Vec::new(),
                fresh: Vec::new(),
            }),
            allocs: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            cached: AtomicU64::new(0),
        }
    }
}

/// Owner-exclusive counter bump: a plain load+store instead of a locked
/// RMW — the whole point of the magazine layer is that the hit path never
/// executes a `lock`-prefixed instruction.
#[inline]
fn bump(counter: &AtomicU64, delta: u64) {
    counter.store(
        counter.load(Ordering::Relaxed).wrapping_add(delta),
        Ordering::Relaxed,
    );
}

#[inline]
fn debit(counter: &AtomicU64, delta: u64) {
    counter.store(
        counter.load(Ordering::Relaxed).wrapping_sub(delta),
        Ordering::Relaxed,
    );
}

// ---------------------------------------------------------------------------
// The pool.
// ---------------------------------------------------------------------------

#[repr(transparent)]
struct Slot<T>(UnsafeCell<MaybeUninit<T>>);

/// Arena-mode storage: aligned slabs instead of boxed chunks, and one
/// address-ordered free store instead of magazine-granular depot stacks
/// (see the `arena` module docs).
struct ArenaDepot<T> {
    slabs: Vec<Slab<Slot<T>>>,
    store: FreeStore<T>,
}

struct PoolInner<T> {
    /// Owning storage (boxed mode); never shrinks while the pool lives
    /// (type stability).
    chunks: Vec<Box<[Slot<T>]>>,
    /// Arena-mode storage (slabs + address-ordered free store); `Some`
    /// exactly when the pool was built through an `arena*` constructor.
    arena: Option<ArenaDepot<T>>,
    /// Full magazines surrendered by overflowing threads (boxed mode).
    depot: Vec<Vec<*mut T>>,
    /// Empty magazine buffers kept for reuse (no malloc churn on exchange).
    spares: Vec<Vec<*mut T>>,
    /// Loose recycled slots from the no-magazine fallback path (thread
    /// teardown, where the thread-index TLS is already destroyed; boxed
    /// mode — the arena free store absorbs these directly).
    loose: Vec<*mut T>,
    /// Total free slots parked under the pool lock: `depot` + `loose`
    /// in boxed mode, the arena free store in arena mode.
    depot_slots: usize,
    /// Bump cursor into the last chunk/slab (starts saturated so the
    /// first allocation triggers growth).
    bump: usize,
    /// Slots ever handed out of the bump region.
    handed_out: usize,
    chunk_capacity: usize,
}

impl<T> PoolInner<T> {
    /// Chunks/slabs currently mapped.
    fn chunk_count(&self) -> usize {
        self.arena
            .as_ref()
            .map_or(self.chunks.len(), |a| a.slabs.len())
    }

    fn grow(&mut self) {
        match self.arena.as_mut() {
            Some(a) => {
                a.slabs.push(Slab::new(self.chunk_capacity));
                optik_probe::count(optik_probe::Event::ArenaSlabAlloc);
            }
            None => {
                let chunk: Box<[Slot<T>]> = (0..self.chunk_capacity)
                    .map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit())))
                    .collect();
                self.chunks.push(chunk);
            }
        }
        self.bump = 0;
    }

    /// Hands out the next never-used slot from the bump region.
    fn bump_one(&mut self) -> *mut T {
        if self.bump == self.chunk_capacity {
            self.grow();
        }
        let idx = self.bump;
        self.bump += 1;
        self.handed_out += 1;
        match self.arena.as_ref() {
            Some(a) => a
                .slabs
                .last()
                .expect("slab pushed by grow")
                .slot(idx)
                .cast::<T>(),
            None => self.chunks.last().expect("chunk pushed by grow")[idx]
                .0
                .get()
                .cast::<T>(),
        }
    }
}

// SAFETY: the raw pointers in `depot` all point into `chunks`, which the
// pool owns; the surrounding spinlock serializes all structural access.
unsafe impl<T: Send> Send for PoolInner<T> {}

/// A type-stable arena allocator for concurrent data-structure nodes, with
/// per-thread magazine caches (see the module docs).
pub struct NodePool<T> {
    inner: Lock<PoolInner<T>, TtasLock>,
    /// Whether this pool was built in arena mode (aligned slabs +
    /// address-ordered refills); fixed at construction.
    arena_mode: bool,
    /// Per-thread magazines, keyed by registry index, allocated lazily by
    /// their owning thread. Readers (stats) only load the pointers.
    mags: Box<[AtomicPtr<CachePadded<MagazineSlot<T>>>]>,
    magazine_capacity: usize,
    /// Retired slots whose grace period has not elapsed yet.
    in_grace: AtomicU64,
    /// Allocations served by the no-magazine fallback (thread teardown).
    direct_allocs: AtomicU64,
    /// Fallback allocations that returned a recycled slot.
    direct_recycled: AtomicU64,
    /// Bumped around every magazine⇄depot exchange. A schedulable shim
    /// word: under `--cfg optik_explore` the explorer interleaves depot
    /// traffic with concurrent retires and grace-period advances at this
    /// yield point; in normal builds it is one relaxed `fetch_add` per
    /// `magazine_capacity` operations. Padded so the slow path does not
    /// dirty the `mags` table's cache lines.
    exchange_epoch: CachePadded<shim::AtomicU64>,
}

// SAFETY: `inner` is lock-protected; magazines are owner-exclusive (see
// `MagazineSlot`); counters are atomics. `T: Send + Sync` because slots are
// shared across threads as `&T`.
unsafe impl<T: Send + Sync> Send for NodePool<T> {}
unsafe impl<T: Send + Sync> Sync for NodePool<T> {}

/// A pointer freshly handed out by [`NodePool::alloc`].
#[derive(Debug)]
pub struct PooledPtr<T> {
    /// The slot. Valid (and type-stable) for the pool's lifetime.
    pub ptr: *mut T,
    /// `false` if the slot is brand new (initialized from `make_fresh`),
    /// `true` if it is a recycled slot whose previous contents are still in
    /// place — the caller must re-initialize every field through atomics.
    pub recycled: bool,
}

/// A point-in-time snapshot of a pool's slot ledger (see
/// [`NodePool::stats`]). Counter fields are exact whenever every thread
/// using the pool is at rest; `live` is derived from the others.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Slots handed out (fresh + recycled) so far.
    pub allocations: u64,
    /// Allocations served from recycled slots.
    pub recycle_hits: u64,
    /// Allocations that took the pool lock (depot fetch or bump refill).
    pub slow_allocs: u64,
    /// Slots currently parked in per-thread magazines.
    pub cached: u64,
    /// Slots currently parked in the depot.
    pub depot: u64,
    /// Retired slots still awaiting their grace period.
    pub in_grace: u64,
    /// Total slot capacity currently reserved from the OS.
    pub capacity: u64,
    /// Slots never yet handed out of the bump region.
    pub unallocated: u64,
}

impl PoolStats {
    /// Magazine hit rate: fraction of allocations served without taking
    /// the pool lock. `1.0` for an untouched pool.
    pub fn magazine_hit_rate(&self) -> f64 {
        if self.allocations == 0 {
            1.0
        } else {
            1.0 - self.slow_allocs as f64 / self.allocations as f64
        }
    }

    /// Slots the ledger says are currently live (allocated, not yet back
    /// in any pool structure): `capacity - unallocated - cached - depot -
    /// in_grace`, saturating at zero against racy snapshots.
    pub fn live(&self) -> u64 {
        self.capacity
            .saturating_sub(self.unallocated)
            .saturating_sub(self.cached)
            .saturating_sub(self.depot)
            .saturating_sub(self.in_grace)
    }
}

impl<T: Send + Sync + 'static> NodePool<T> {
    /// Creates a pool with the default chunk and magazine capacities.
    pub fn new() -> Arc<Self> {
        Self::with_chunk_capacity(DEFAULT_CHUNK_CAPACITY)
    }

    /// Creates a pool allocating `chunk_capacity` slots at a time, with
    /// the default magazine capacity.
    ///
    /// # Panics
    ///
    /// Panics if `T` needs drop (pooled nodes must be plain data + atomics)
    /// or if `chunk_capacity` is zero.
    pub fn with_chunk_capacity(chunk_capacity: usize) -> Arc<Self> {
        Self::with_config(chunk_capacity, DEFAULT_MAGAZINE_CAPACITY)
    }

    /// Creates a pool with explicit chunk and magazine capacities. The
    /// effective exchange batch is `min(magazine_capacity,
    /// chunk_capacity)`, so small test pools don't over-reserve.
    ///
    /// # Panics
    ///
    /// Panics if `T` needs drop or either capacity is zero.
    pub fn with_config(chunk_capacity: usize, magazine_capacity: usize) -> Arc<Self> {
        Self::build(chunk_capacity, magazine_capacity, false)
    }

    /// Creates an arena-backed pool with the default capacities:
    /// aligned, type-stable slabs and address-ordered magazine refills
    /// (see the `arena` module docs). Same API and safety contract as
    /// the boxed pool — only slot placement differs.
    pub fn arena() -> Arc<Self> {
        Self::arena_with_config(DEFAULT_CHUNK_CAPACITY, DEFAULT_MAGAZINE_CAPACITY)
    }

    /// Arena-backed pool allocating `chunk_capacity` slots per slab.
    pub fn arena_with_chunk_capacity(chunk_capacity: usize) -> Arc<Self> {
        Self::arena_with_config(chunk_capacity, DEFAULT_MAGAZINE_CAPACITY)
    }

    /// Arena-backed pool with explicit slab and magazine capacities.
    ///
    /// # Panics
    ///
    /// As [`NodePool::with_config`]; additionally panics if `T` is
    /// zero-sized (slabs need addressable slots).
    pub fn arena_with_config(chunk_capacity: usize, magazine_capacity: usize) -> Arc<Self> {
        assert!(
            std::mem::size_of::<T>() > 0,
            "arena pools need sized node types"
        );
        Self::build(chunk_capacity, magazine_capacity, true)
    }

    fn build(chunk_capacity: usize, magazine_capacity: usize, arena: bool) -> Arc<Self> {
        assert!(
            !std::mem::needs_drop::<T>(),
            "NodePool requires nodes without Drop glue"
        );
        assert!(chunk_capacity > 0, "chunk capacity must be positive");
        assert!(magazine_capacity > 0, "magazine capacity must be positive");
        Arc::new(Self {
            inner: Lock::new(PoolInner {
                chunks: Vec::new(),
                arena: arena.then(|| ArenaDepot {
                    slabs: Vec::new(),
                    store: FreeStore::new(),
                }),
                depot: Vec::new(),
                spares: Vec::new(),
                loose: Vec::new(),
                depot_slots: 0,
                bump: chunk_capacity,
                handed_out: 0,
                chunk_capacity,
            }),
            arena_mode: arena,
            mags: (0..MAX_THREADS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            magazine_capacity: magazine_capacity.min(chunk_capacity),
            in_grace: AtomicU64::new(0),
            direct_allocs: AtomicU64::new(0),
            direct_recycled: AtomicU64::new(0),
            exchange_epoch: CachePadded::new(shim::AtomicU64::new(0)),
        })
    }

    /// Whether this pool is arena-backed (see [`NodePool::arena`]).
    #[inline]
    pub fn is_arena(&self) -> bool {
        self.arena_mode
    }

    /// The calling thread's magazine for this pool; `None` only during
    /// thread teardown (see [`thread_index`]).
    #[inline]
    fn magazine(&self) -> Option<&CachePadded<MagazineSlot<T>>> {
        let idx = thread_index()?;
        let p = self.mags[idx].load(Ordering::Acquire);
        if !p.is_null() {
            // SAFETY: published boxes are only freed in `Drop`, which has
            // exclusive access.
            Some(unsafe { &*p })
        } else {
            Some(self.magazine_init(idx))
        }
    }

    #[cold]
    fn magazine_init(&self, idx: usize) -> &CachePadded<MagazineSlot<T>> {
        let fresh = Box::into_raw(Box::new(CachePadded::new(MagazineSlot::new())));
        // Only the index owner stores here, so the CAS cannot lose; it is
        // still a CAS (not a blind store) to keep stats readers safe if
        // that invariant ever breaks.
        match self.mags[idx].compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            // SAFETY: just published / already published; never freed
            // while the pool lives.
            Ok(_) => unsafe { &*fresh },
            Err(existing) => unsafe {
                drop(Box::from_raw(fresh));
                &*existing
            },
        }
    }

    /// Grabs a slot without initializing it.
    fn alloc_slot(&self) -> PooledPtr<T> {
        let Some(mag) = self.magazine() else {
            return self.alloc_direct();
        };
        bump(&mag.allocs, 1);
        // SAFETY: owner-exclusive (see MagazineSlot).
        let cache = unsafe { &mut *mag.cache.get() };
        if let Some(ptr) = cache.loaded.pop().or_else(|| {
            if cache.prev.is_empty() {
                None
            } else {
                std::mem::swap(&mut cache.loaded, &mut cache.prev);
                cache.loaded.pop()
            }
        }) {
            optik_probe::count(optik_probe::Event::MagazineHit);
            bump(&mag.recycled, 1);
            debit(&mag.cached, 1);
            return PooledPtr {
                ptr,
                recycled: true,
            };
        }
        if let Some(ptr) = cache.fresh.pop() {
            optik_probe::count(optik_probe::Event::MagazineHit);
            debit(&mag.cached, 1);
            return PooledPtr {
                ptr,
                recycled: false,
            };
        }
        self.alloc_slow(mag, cache)
    }

    /// Magazine miss: exchange with the depot (a full magazine of recycled
    /// slots if one exists, else a batch of fresh bump slots) under one
    /// lock acquisition amortized over `magazine_capacity` allocations.
    #[cold]
    fn alloc_slow(&self, mag: &MagazineSlot<T>, cache: &mut ThreadCache<T>) -> PooledPtr<T> {
        optik_probe::count(optik_probe::Event::MagazineMiss);
        bump(&mag.slow, 1);
        // Explorer yield point: depot exchange about to happen.
        self.exchange_epoch.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if self.arena_mode {
            // Address-ordered refill: the free store hands back the
            // lowest-address cluster of recycled slots as this thread's
            // next magazine.
            let take = inner
                .arena
                .as_mut()
                .expect("arena mode has a depot")
                .store
                .refill(&mut cache.loaded, self.magazine_capacity);
            if take > 0 {
                inner.depot_slots -= take;
                drop(inner);
                bump(&mag.cached, take as u64);
                bump(&mag.recycled, 1);
                let ptr = cache.loaded.pop().expect("took at least one slot");
                debit(&mag.cached, 1);
                return PooledPtr {
                    ptr,
                    recycled: true,
                };
            }
        } else if !inner.loose.is_empty() {
            // Adopt teardown leftovers as this thread's recycled batch.
            let take = inner.loose.len().min(self.magazine_capacity);
            let at = inner.loose.len() - take;
            cache.loaded.extend(inner.loose.drain(at..));
            inner.depot_slots -= take;
            drop(inner);
            bump(&mag.cached, take as u64);
            bump(&mag.recycled, 1);
            let ptr = cache.loaded.pop().expect("took at least one slot");
            debit(&mag.cached, 1);
            return PooledPtr {
                ptr,
                recycled: true,
            };
        }
        if let Some(full) = inner.depot.pop() {
            inner.depot_slots -= full.len();
            let old = std::mem::replace(&mut cache.loaded, full);
            debug_assert!(old.is_empty());
            inner.spares.push(old);
            drop(inner);
            bump(&mag.cached, cache.loaded.len() as u64);
            bump(&mag.recycled, 1);
            let ptr = cache.loaded.pop().expect("depot magazines are never empty");
            debit(&mag.cached, 1);
            return PooledPtr {
                ptr,
                recycled: true,
            };
        }
        // No recycled batch: hand out a batch of fresh slots.
        let want = self.magazine_capacity;
        cache.fresh.reserve(want);
        for _ in 0..want {
            let ptr = inner.bump_one();
            cache.fresh.push(ptr);
        }
        drop(inner);
        bump(&mag.cached, want as u64);
        let ptr = cache.fresh.pop().expect("batch is non-empty");
        debit(&mag.cached, 1);
        PooledPtr {
            ptr,
            recycled: false,
        }
    }

    /// No-magazine fallback (thread teardown): one slot per lock trip.
    /// Counted through pool-level atomics so the ledger stays exact.
    #[cold]
    fn alloc_direct(&self) -> PooledPtr<T> {
        optik_probe::count(optik_probe::Event::MagazineMiss);
        self.direct_allocs.fetch_add(1, Ordering::Relaxed);
        self.exchange_epoch.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if self.arena_mode {
            let popped = inner
                .arena
                .as_mut()
                .expect("arena mode has a depot")
                .store
                .pop_one();
            if let Some(ptr) = popped {
                inner.depot_slots -= 1;
                self.direct_recycled.fetch_add(1, Ordering::Relaxed);
                return PooledPtr {
                    ptr,
                    recycled: true,
                };
            }
            let ptr = inner.bump_one();
            return PooledPtr {
                ptr,
                recycled: false,
            };
        }
        if let Some(ptr) = inner.loose.pop() {
            inner.depot_slots -= 1;
            self.direct_recycled.fetch_add(1, Ordering::Relaxed);
            return PooledPtr {
                ptr,
                recycled: true,
            };
        }
        if let Some(full) = inner.depot.last_mut() {
            let ptr = full.pop().expect("depot magazines are never empty");
            if full.is_empty() {
                let empty = inner.depot.pop().expect("checked non-empty");
                inner.spares.push(empty);
            }
            inner.depot_slots -= 1;
            self.direct_recycled.fetch_add(1, Ordering::Relaxed);
            return PooledPtr {
                ptr,
                recycled: true,
            };
        }
        let ptr = inner.bump_one();
        PooledPtr {
            ptr,
            recycled: false,
        }
    }

    /// Returns a free (already-recycled or never-published) slot to the
    /// calling thread's magazine, overflowing whole magazines to the depot.
    fn release_slot(&self, ptr: *mut T) {
        let Some(mag) = self.magazine() else {
            // Thread teardown: park the slot under the pool lock.
            let mut inner = self.inner.lock();
            match inner.arena.as_mut() {
                Some(a) => a.store.push(ptr),
                None => inner.loose.push(ptr),
            }
            inner.depot_slots += 1;
            return;
        };
        // SAFETY: owner-exclusive (see MagazineSlot).
        let cache = unsafe { &mut *mag.cache.get() };
        let cap = self.magazine_capacity;
        if cache.loaded.len() >= cap {
            if cache.prev.is_empty() {
                std::mem::swap(&mut cache.loaded, &mut cache.prev);
            } else {
                // Both magazines full: surrender `loaded` to the depot and
                // continue filling a spare.
                self.exchange_epoch.fetch_add(1, Ordering::Relaxed);
                let mut inner = self.inner.lock();
                if self.arena_mode {
                    // The arena depot is one flat store: drain the batch
                    // in place (keeps the buffer) for later address-sorted
                    // refills.
                    let n = cache.loaded.len();
                    inner
                        .arena
                        .as_mut()
                        .expect("arena mode has a depot")
                        .store
                        .push_batch(&mut cache.loaded);
                    debit(&mag.cached, n as u64);
                    inner.depot_slots += n;
                } else {
                    let spare = inner.spares.pop().unwrap_or_default();
                    let full = std::mem::replace(&mut cache.loaded, spare);
                    debit(&mag.cached, full.len() as u64);
                    inner.depot_slots += full.len();
                    inner.depot.push(full);
                }
            }
        }
        cache.loaded.push(ptr);
        bump(&mag.cached, 1);
    }

    /// Allocates a slot. Fresh slots are initialized with `make_fresh`;
    /// recycled slots are returned as-is (see [`PooledPtr::recycled`]) and
    /// must be re-initialized through their atomics.
    pub fn alloc(&self, make_fresh: impl FnOnce() -> T) -> PooledPtr<T> {
        let p = self.alloc_slot();
        if !p.recycled {
            // SAFETY: the slot is brand new: no other thread has seen it.
            unsafe { p.ptr.write(make_fresh()) };
        }
        p
    }

    /// Allocates a slot and unconditionally overwrites it with `make()`.
    ///
    /// For structures whose readers never hold node pointers *across*
    /// operations (no node caching): without stale readers, a recycled
    /// slot has provably no observers once its grace period has elapsed,
    /// so a plain full-slot write is safe and cheaper than field-by-field
    /// atomic re-initialization. Structures that cache `(node, version)`
    /// pairs across operations must keep using [`NodePool::alloc`].
    pub fn alloc_init(&self, make: impl FnOnce() -> T) -> *mut T {
        let p = self.alloc_slot();
        // SAFETY: fresh slots are unobserved; recycled slots passed their
        // grace period after being unlinked, so (absent cross-operation
        // caching, per the method contract) no thread can be reading them.
        unsafe { p.ptr.write(make()) };
        p.ptr
    }

    /// Returns `ptr` to the magazine layer after a QSBR grace period.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from this pool's [`NodePool::alloc`] /
    /// [`NodePool::alloc_init`], must be unreachable to *new* readers
    /// (unlinked), and must not be retired twice.
    pub unsafe fn retire(self: &Arc<Self>, ptr: *mut T, handle: &QsbrHandle) {
        unsafe fn recycle<T: Send + Sync + 'static>(p: *mut u8, ctx: Option<RetireCtx>) {
            let pool = ctx
                .expect("pool retire always carries ctx")
                .downcast::<NodePool<T>>()
                .expect("ctx is the originating pool");
            pool.in_grace.fetch_sub(1, Ordering::Relaxed);
            pool.release_slot(p.cast::<T>());
        }
        self.in_grace.fetch_add(1, Ordering::Relaxed);
        // SAFETY: after the grace period the slot has no in-operation
        // readers with *liveness* expectations; parking it in a magazine
        // does not overwrite its contents, so even stale cached pointers
        // (node caching) keep reading a valid `T`.
        unsafe {
            handle.retire_with(
                ptr.cast::<u8>(),
                recycle::<T>,
                Some(Arc::clone(self) as RetireCtx),
            )
        };
    }

    /// Immediately returns a never-published slot to the magazine layer.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from this pool's [`NodePool::alloc`] /
    /// [`NodePool::alloc_init`] and must never have been made reachable
    /// from any shared structure.
    pub unsafe fn dealloc_unpublished(&self, ptr: *mut T) {
        self.release_slot(ptr);
    }

    /// Total slots handed out (fresh + recycled) so far.
    pub fn allocations(&self) -> u64 {
        self.sum_mags(|m| &m.allocs)
            .wrapping_add(self.direct_allocs.load(Ordering::Relaxed))
    }

    /// How many allocations were served from recycled slots.
    pub fn recycle_hits(&self) -> u64 {
        self.sum_mags(|m| &m.recycled)
            .wrapping_add(self.direct_recycled.load(Ordering::Relaxed))
    }

    /// Free slots currently parked in the pool (per-thread magazines plus
    /// the depot); excludes retired slots still awaiting grace.
    pub fn free_len(&self) -> usize {
        (self.sum_mags(|m| &m.cached) as usize) + self.inner.lock().depot_slots
    }

    /// Total slot capacity currently reserved from the OS.
    pub fn capacity(&self) -> usize {
        let inner = self.inner.lock();
        inner.chunk_count() * inner.chunk_capacity
    }

    /// Snapshot of the pool's slot ledger. Exact when all threads using
    /// the pool are quiescent (counters are owner-written per thread).
    pub fn stats(&self) -> PoolStats {
        let (depot, capacity, unallocated) = {
            let inner = self.inner.lock();
            let cap = inner.chunk_count() * inner.chunk_capacity;
            (
                inner.depot_slots as u64,
                cap as u64,
                (cap - inner.handed_out) as u64,
            )
        };
        PoolStats {
            allocations: self.allocations(),
            recycle_hits: self.recycle_hits(),
            slow_allocs: self
                .sum_mags(|m| &m.slow)
                .wrapping_add(self.direct_allocs.load(Ordering::Relaxed)),
            cached: self.sum_mags(|m| &m.cached),
            depot,
            in_grace: self.in_grace.load(Ordering::Relaxed),
            capacity,
            unallocated,
        }
    }

    /// The extended ledger of an arena-backed pool; `None` for boxed
    /// pools. Exact when all threads using the pool are quiescent.
    pub fn arena_stats(&self) -> Option<ArenaStats> {
        if !self.arena_mode {
            return None;
        }
        let pool = self.stats();
        let inner = self.inner.lock();
        let a = inner.arena.as_ref().expect("arena mode has a depot");
        Some(ArenaStats {
            pool,
            chunk_capacity: inner.chunk_capacity as u64,
            slab_allocs: a.slabs.len() as u64,
            run_refills: a.store.run_refills,
            freed_slots: a.store.freed,
            refilled_slots: a.store.refilled,
            free_store: a.store.len() as u64,
        })
    }

    fn sum_mags(&self, field: impl Fn(&MagazineSlot<T>) -> &AtomicU64) -> u64 {
        let mut total = 0u64;
        for slot in self.mags.iter() {
            let p = slot.load(Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: published magazine boxes live as long as the pool.
                total = total.wrapping_add(field(unsafe { &**p }).load(Ordering::Relaxed));
            }
        }
        total
    }
}

impl<T> Drop for NodePool<T> {
    fn drop(&mut self) {
        for slot in self.mags.iter_mut() {
            let p = *slot.get_mut();
            if !p.is_null() {
                // SAFETY: exclusive access at drop; boxes were published
                // exactly once.
                unsafe { drop(Box::from_raw(p)) };
            }
        }
    }
}

impl<T> std::fmt::Debug for NodePool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodePool")
            .field("in_grace", &self.in_grace.load(Ordering::Relaxed))
            .field("magazine_capacity", &self.magazine_capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Qsbr;

    #[derive(Default)]
    struct Node {
        key: AtomicU64,
    }

    #[test]
    fn fresh_allocations_bump_through_chunks() {
        let pool: Arc<NodePool<Node>> = NodePool::with_chunk_capacity(4);
        let mut ptrs = Vec::new();
        for i in 0..10u64 {
            let p = pool.alloc(Node::default);
            assert!(!p.recycled);
            // SAFETY: fresh slot, valid for pool lifetime.
            unsafe { (*p.ptr).key.store(i, Ordering::Relaxed) };
            ptrs.push(p.ptr);
        }
        // Magazine batches are clamped to the chunk capacity, so ten
        // allocations reserve exactly three chunks of four.
        assert_eq!(pool.capacity(), 12);
        // All pointers distinct.
        let mut sorted = ptrs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        // Contents intact.
        for (i, p) in ptrs.iter().enumerate() {
            // SAFETY: slots live as long as the pool.
            assert_eq!(unsafe { (**p).key.load(Ordering::Relaxed) }, i as u64);
        }
    }

    #[test]
    fn retire_recycles_after_grace_period() {
        let domain = Qsbr::new();
        let h = domain.register();
        let pool: Arc<NodePool<Node>> = NodePool::with_chunk_capacity(8);

        let p = pool.alloc(Node::default);
        // SAFETY: p came from this pool and was never published.
        unsafe { pool.retire(p.ptr, &h) };
        assert_eq!(pool.stats().in_grace, 1);
        h.flush();
        h.quiescent();
        h.collect();
        assert_eq!(pool.stats().in_grace, 0);

        let q = pool.alloc(Node::default);
        assert!(q.recycled);
        assert_eq!(q.ptr, p.ptr, "recycled slot is the retired one");
        drop(h);
    }

    #[test]
    fn dealloc_unpublished_skips_grace_period() {
        let pool: Arc<NodePool<Node>> = NodePool::with_chunk_capacity(8);
        let p = pool.alloc(Node::default);
        // SAFETY: never published.
        unsafe { pool.dealloc_unpublished(p.ptr) };
        let q = pool.alloc(Node::default);
        assert!(q.recycled);
        assert_eq!(q.ptr, p.ptr);
    }

    #[test]
    fn type_stability_stale_reader_sees_valid_node() {
        // A "stale" pointer kept across retire + recycle still reads a valid
        // Node (this is exactly what node caching does).
        let domain = Qsbr::new();
        let h = domain.register();
        let pool: Arc<NodePool<Node>> = NodePool::with_chunk_capacity(8);

        let p = pool.alloc(Node::default);
        // SAFETY: fresh slot.
        unsafe { (*p.ptr).key.store(7, Ordering::Relaxed) };
        let stale = p.ptr;

        // SAFETY: unlinked (never published in this test).
        unsafe { pool.retire(p.ptr, &h) };
        h.flush();
        h.quiescent();
        h.collect();
        let q = pool.alloc(Node::default);
        assert_eq!(q.ptr, stale);
        // SAFETY: type-stable — stale pointer still addresses a Node.
        unsafe { (*q.ptr).key.store(99, Ordering::Relaxed) };
        // The stale reader observes the *new* contents — detectable via the
        // version validation the data structures layer adds.
        // SAFETY: as above.
        assert_eq!(unsafe { (*stale).key.load(Ordering::Relaxed) }, 99);
        drop(h);
    }

    #[test]
    fn magazine_hit_path_avoids_the_pool_lock() {
        let domain = Qsbr::new();
        let h = domain.register();
        let pool: Arc<NodePool<Node>> = NodePool::new();
        // Steady-state churn: one working slot cycling through the local
        // magazine.
        for _ in 0..1_000 {
            let p = pool.alloc(Node::default);
            // SAFETY: unlinked, retired once.
            unsafe { pool.retire(p.ptr, &h) };
            h.flush();
            h.quiescent();
            h.collect();
        }
        let stats = pool.stats();
        assert_eq!(stats.allocations, 1_000);
        assert!(
            stats.magazine_hit_rate() > 0.99,
            "steady churn must stay in the magazine: {stats:?}"
        );
        drop(h);
    }

    #[test]
    fn overflow_exchanges_whole_magazines_with_the_depot() {
        let pool: Arc<NodePool<Node>> = NodePool::with_config(1024, 4);
        // Allocate enough live slots, then release them all without grace
        // (never published), overflowing loaded + prev into the depot.
        let ptrs: Vec<_> = (0..32).map(|_| pool.alloc(Node::default).ptr).collect();
        for p in &ptrs {
            // SAFETY: never published.
            unsafe { pool.dealloc_unpublished(*p) };
        }
        let stats = pool.stats();
        assert_eq!(stats.cached + stats.depot, 32, "{stats:?}");
        assert!(stats.depot > 0, "expected depot overflow: {stats:?}");
        assert_eq!(stats.live(), 0, "{stats:?}");
        // Re-allocating drains magazines first, then depot batches, and
        // hands back exactly the same 32 slots before growing.
        let cap = pool.capacity();
        let again: Vec<_> = (0..32).map(|_| pool.alloc(Node::default).ptr).collect();
        assert_eq!(pool.capacity(), cap, "no growth while free slots exist");
        let mut a: Vec<_> = ptrs.clone();
        let mut b: Vec<_> = again.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn conservation_ledger_balances_after_churn() {
        let domain = Qsbr::new();
        let h = domain.register();
        let pool: Arc<NodePool<Node>> = NodePool::with_config(16, 4);
        let mut live = Vec::new();
        for i in 0..200u64 {
            let p = pool.alloc(Node::default);
            live.push(p.ptr);
            if i % 3 == 0 {
                let victim = live.swap_remove((i as usize * 7) % live.len());
                // SAFETY: victim is live, unlinked, retired once.
                unsafe { pool.retire(victim, &h) };
            }
            h.quiescent();
        }
        h.flush();
        h.quiescent();
        h.collect();
        let stats = pool.stats();
        assert_eq!(stats.in_grace, 0, "{stats:?}");
        assert_eq!(stats.live() as usize, live.len(), "{stats:?}");
        assert_eq!(
            stats.capacity,
            stats.unallocated + stats.cached + stats.depot + stats.live(),
            "{stats:?}"
        );
        drop(h);
    }

    #[test]
    fn concurrent_alloc_retire_is_balanced() {
        let domain = Qsbr::new();
        let pool: Arc<NodePool<Node>> = NodePool::with_chunk_capacity(128);
        const THREADS: usize = 8;
        const OPS: usize = 10_000;

        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let domain = Arc::clone(&domain);
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let h = domain.register();
                for i in 0..OPS {
                    let p = pool.alloc(Node::default);
                    // SAFETY: we are the only publisher of this slot.
                    unsafe { (*p.ptr).key.store(i as u64, Ordering::Release) };
                    // SAFETY: unlinked, retired once.
                    unsafe { pool.retire(p.ptr, &h) };
                    h.quiescent();
                }
                h.flush();
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(pool.allocations(), (THREADS * OPS) as u64);
        // Recycling must have happened (the pool would otherwise hold
        // THREADS*OPS slots).
        assert!(pool.capacity() < THREADS * OPS);
    }

    #[test]
    fn arena_pool_behaves_like_the_boxed_pool() {
        // The whole boxed contract, on the arena variant: fresh bumping,
        // grace-gated recycling, type stability.
        let domain = Qsbr::new();
        let h = domain.register();
        let pool: Arc<NodePool<Node>> = NodePool::arena_with_config(8, 4);
        assert!(pool.is_arena());
        let p = pool.alloc(Node::default);
        assert!(!p.recycled);
        // SAFETY: unlinked (never published), retired once.
        unsafe { pool.retire(p.ptr, &h) };
        h.flush();
        h.quiescent();
        h.collect();
        let q = pool.alloc(Node::default);
        assert!(q.recycled);
        assert_eq!(q.ptr, p.ptr, "recycled slot is the retired one");
        drop(h);
    }

    #[test]
    fn arena_slabs_are_aligned_and_contiguous() {
        let pool: Arc<NodePool<Node>> = NodePool::arena_with_config(16, 4);
        let ptrs: Vec<usize> = (0..16)
            .map(|_| pool.alloc(Node::default).ptr as usize)
            .collect();
        // A slab's first slot sits on the slab-alignment boundary...
        let base = *ptrs.iter().min().unwrap();
        assert_eq!(base % crate::arena::SLAB_ALIGN, 0, "slab base aligned");
        // ...and all 16 slots of the first slab are dense.
        let mut sorted = ptrs.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert_eq!(w[1] - w[0], std::mem::size_of::<Node>(), "dense slots");
        }
    }

    #[test]
    fn arena_refills_are_address_ordered() {
        // Overflow both magazines into the free store, then drain it
        // back: the refilled batch must be the lowest-address cluster.
        let pool: Arc<NodePool<Node>> = NodePool::arena_with_config(1024, 4);
        let ptrs: Vec<_> = (0..32).map(|_| pool.alloc(Node::default).ptr).collect();
        for p in &ptrs {
            // SAFETY: never published.
            unsafe { pool.dealloc_unpublished(*p) };
        }
        let st = pool.arena_stats().expect("arena pool");
        assert!(st.free_store > 0, "overflow reached the store: {st:?}");
        assert_eq!(st.freed_slots, st.refilled_slots + st.free_store, "{st:?}");
        // Drain magazines (loaded + prev = 8 slots), forcing a store refill.
        let mut got = Vec::new();
        for _ in 0..12 {
            let p = pool.alloc(Node::default);
            assert!(p.recycled, "no growth while free slots exist");
            got.push(p.ptr as usize);
        }
        let st2 = pool.arena_stats().expect("arena pool");
        assert!(st2.run_refills > st.run_refills, "a refill happened");
        // The slots that came *out of the store* (after the 8 cached ones)
        // are the lowest addresses that were parked there.
        let refilled = &got[8..];
        let mut parked: Vec<usize> = ptrs.iter().map(|p| *p as usize).collect();
        parked.sort_unstable();
        for (i, p) in refilled.iter().enumerate() {
            assert!(
                parked[..st.free_store as usize].contains(p),
                "refill slot {i} not from the store's low cluster"
            );
        }
        for (label, lhs, rhs) in st2.conservation() {
            assert_eq!(lhs, rhs, "arena ledger `{label}`: {st2:?}");
        }
    }

    #[test]
    fn arena_conservation_ledger_balances_after_churn() {
        let domain = Qsbr::new();
        let h = domain.register();
        let pool: Arc<NodePool<Node>> = NodePool::arena_with_config(16, 4);
        let mut live = Vec::new();
        for i in 0..200u64 {
            let p = pool.alloc(Node::default);
            live.push(p.ptr);
            if i % 3 == 0 {
                let victim = live.swap_remove((i as usize * 7) % live.len());
                // SAFETY: victim is live, unlinked, retired once.
                unsafe { pool.retire(victim, &h) };
            }
            h.quiescent();
        }
        h.flush();
        h.quiescent();
        h.collect();
        let st = pool.arena_stats().expect("arena pool");
        assert_eq!(st.pool.in_grace, 0, "{st:?}");
        assert_eq!(st.pool.live() as usize, live.len(), "{st:?}");
        for (label, lhs, rhs) in st.conservation() {
            assert_eq!(lhs, rhs, "arena ledger `{label}`: {st:?}");
        }
        drop(h);
    }

    #[test]
    fn boxed_pool_has_no_arena_stats() {
        let pool: Arc<NodePool<Node>> = NodePool::new();
        assert!(!pool.is_arena());
        assert!(pool.arena_stats().is_none());
    }

    #[test]
    #[should_panic(expected = "chunk capacity")]
    fn zero_chunk_capacity_panics() {
        let _ = NodePool::<Node>::with_chunk_capacity(0);
    }

    #[test]
    #[should_panic(expected = "magazine capacity")]
    fn zero_magazine_capacity_panics() {
        let _ = NodePool::<Node>::with_config(8, 0);
    }
}
