//! Quiescent-state-based memory reclamation (QSBR) and type-stable pooling.
//!
//! The OPTIK paper's data structures free unlinked nodes with `ssmem`, "a
//! simple memory allocator with quiescent-based memory reclamation" (§3.3).
//! This crate reproduces that substrate from scratch:
//!
//! - [`Qsbr`] — a reclamation *domain*. Threads register to obtain a
//!   [`QsbrHandle`], announce quiescent points between operations with
//!   [`QsbrHandle::quiescent`], and defer frees with [`QsbrHandle::retire`].
//!   A retired object is dropped only after every registered, online thread
//!   has passed through a quiescent point, so oblivious readers (the paper's
//!   searches never synchronize) can never touch freed memory.
//! - [`NodePool`] — a type-stable arena: slots are recycled but their memory
//!   is never returned to the OS while the pool lives. This is what makes
//!   the paper's *node caching* (§5.1) safe: a stale cached pointer always
//!   points at *some* node of the right type, and OPTIK version validation
//!   detects reuse.
//! - [`global`]/[`with_local`]/[`quiescent`] — a process-wide default domain
//!   with per-thread handles, so data-structure APIs stay clean
//!   (`list.insert(k, v)` with no explicit guard arguments).
//!
//! # The QSBR contract
//!
//! A thread registered in a domain must either call `quiescent()` regularly
//! (typically once per data-structure operation) or mark itself offline with
//! [`QsbrHandle::offline`]; otherwise garbage accumulates. This is the same
//! contract ssmem imposes in the paper.

//!
//! [`NodePool`] comes in two storage modes sharing one API: the default
//! boxed-chunk pool, and an arena-backed variant ([`NodePool::arena`],
//! module [`arena`]) with aligned slabs and address-ordered magazine
//! refills for traversal locality; [`ArenaStats`] extends the slot
//! ledger with the arena's own conservation identities.

#![warn(missing_docs)]

pub mod arena;
mod domain;
mod global;
mod pool;

pub use arena::ArenaStats;
pub use domain::{Qsbr, QsbrHandle, QsbrStats, RetireCtx, MAX_THREADS};
pub use global::{global, offline, offline_while, online, quiescent, retire_global, with_local};
pub use pool::{NodePool, PoolStats, PooledPtr, DEFAULT_CHUNK_CAPACITY, DEFAULT_MAGAZINE_CAPACITY};
