//! Arena-backed slab storage and the address-ordered depot free store.
//!
//! The magazine pool (`pool.rs`) stores slots in `Box<[Slot<T>]>` chunks
//! and exchanges *whole magazines* with its depot: a surrendered
//! magazine keeps the order its owner released slots in, so after a few
//! churn generations a refilled magazine hands out nodes scattered
//! across every chunk ever allocated — each traversal hop is a fresh
//! cache line and, eventually, a fresh TLB page.
//!
//! The arena variant replaces both halves:
//!
//! - **Slabs** (`Slab`): chunk storage allocated directly from the
//!   global allocator with an explicit [`Layout`], base-aligned to
//!   [`SLAB_ALIGN`] so a slab never straddles more pages than its size
//!   requires and node addresses are stable, dense, and comparable.
//! - **An address-ordered free store** (`FreeStore`): surrendered
//!   magazines merge into one flat pool of free slots that is sorted by
//!   address (descending, lazily — one sort per refill, amortized over
//!   `magazine_capacity` operations) before a magazine is handed back
//!   out. Each refill drains the *lowest-address* tail, so recycled
//!   nodes leave the depot in physically adjacent runs: a traversal
//!   that inserts a burst of nodes places them on as few cache lines
//!   as the free space permits.
//!
//! The refill path measures itself: every maximal run of consecutive
//! addresses inside a handed-out magazine is recorded into the
//! [`optik_probe::HistKind::ArenaRun`] log-2 histogram, so "did the
//! sort actually cluster anything" is a reported number, not a hope.
//! [`ArenaStats`] extends the pool ledger with the arena's own
//! conservation identities.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};

use crate::pool::PoolStats;

/// Slab base alignment (bytes). One x86 page: keeps every slab's first
/// node at offset zero of a page and makes slot addresses dense within
/// page-aligned windows.
pub const SLAB_ALIGN: usize = 4096;

/// One aligned, type-stable slab of `E` slots. Never freed (or moved)
/// while the owning pool lives; dropped with the pool.
pub(crate) struct Slab<E> {
    base: *mut E,
    layout: Layout,
}

impl<E> Slab<E> {
    /// Maps a slab of `cap` uninitialized slots.
    ///
    /// # Panics
    ///
    /// Panics if `E` is zero-sized, `cap` is zero, or the layout
    /// overflows `isize`. Aborts (via [`handle_alloc_error`]) if the
    /// allocator fails.
    pub(crate) fn new(cap: usize) -> Self {
        assert!(std::mem::size_of::<E>() > 0, "arena slabs need sized slots");
        assert!(cap > 0, "arena slabs need at least one slot");
        let layout = Layout::array::<E>(cap)
            .and_then(|l| l.align_to(SLAB_ALIGN.max(std::mem::align_of::<E>())))
            .map(|l| l.pad_to_align())
            .expect("slab layout overflows");
        // SAFETY: layout has non-zero size (asserted above).
        let base = unsafe { alloc(layout) };
        if base.is_null() {
            handle_alloc_error(layout);
        }
        Self {
            base: base.cast::<E>(),
            layout,
        }
    }

    /// Pointer to slot `i` (caller keeps `i < cap`).
    #[inline]
    pub(crate) fn slot(&self, i: usize) -> *mut E {
        // SAFETY: `i` is within the mapped array per the contract.
        unsafe { self.base.add(i) }
    }
}

impl<E> Drop for Slab<E> {
    fn drop(&mut self) {
        // Slot contents are abandoned in place (pooled node types carry
        // no Drop glue, asserted at pool construction).
        // SAFETY: `base` came from `alloc` with exactly this layout.
        unsafe { dealloc(self.base.cast(), self.layout) };
    }
}

/// The arena depot: one flat, address-sorted pool of free slots.
///
/// Kept sorted *descending* so the cheap end of the `Vec` (the tail,
/// where `pop`/`drain` are O(1) per element) holds the lowest
/// addresses; sorting is deferred (`dirty`) until a refill actually
/// needs order, so a surrender is a plain batch append.
pub(crate) struct FreeStore<T> {
    free: Vec<*mut T>,
    dirty: bool,
    /// Slots ever surrendered into the store (cumulative).
    pub(crate) freed: u64,
    /// Slots ever handed back out of the store (cumulative).
    pub(crate) refilled: u64,
    /// Address-ordered magazine refills served.
    pub(crate) run_refills: u64,
}

impl<T> FreeStore<T> {
    pub(crate) fn new() -> Self {
        Self {
            free: Vec::new(),
            dirty: false,
            freed: 0,
            refilled: 0,
            run_refills: 0,
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.free.len()
    }

    /// Surrenders one slot (the no-magazine teardown path).
    pub(crate) fn push(&mut self, ptr: *mut T) {
        self.free.push(ptr);
        self.dirty = true;
        self.freed += 1;
    }

    /// Surrenders a whole magazine, draining `batch` in place (the
    /// caller keeps the buffer and its capacity).
    pub(crate) fn push_batch(&mut self, batch: &mut Vec<*mut T>) {
        self.freed += batch.len() as u64;
        self.free.append(batch);
        self.dirty = true;
    }

    fn sort(&mut self) {
        if self.dirty {
            // Descending: the drained tail is the lowest-address cluster.
            self.free.sort_unstable_by(|a, b| b.cmp(a));
            self.dirty = false;
        }
    }

    /// Hands out up to `want` slots from the lowest-address end into
    /// `out`, recording each maximal address-contiguous run into the
    /// [`optik_probe::HistKind::ArenaRun`] histogram. Returns how many
    /// slots were taken (0 when the store is empty).
    pub(crate) fn refill(&mut self, out: &mut Vec<*mut T>, want: usize) -> usize {
        if self.free.is_empty() || want == 0 {
            return 0;
        }
        self.sort();
        let take = want.min(self.free.len());
        let at = self.free.len() - take;
        let stride = std::mem::size_of::<T>();
        let mut run = 1u64;
        for w in self.free[at..].windows(2) {
            // Descending order: consecutive means exactly one node apart.
            if (w[0] as usize).wrapping_sub(w[1] as usize) == stride {
                run += 1;
            } else {
                optik_probe::record(optik_probe::HistKind::ArenaRun, run);
                run = 1;
            }
        }
        optik_probe::record(optik_probe::HistKind::ArenaRun, run);
        optik_probe::count(optik_probe::Event::ArenaRunRefill);
        self.run_refills += 1;
        self.refilled += take as u64;
        out.extend(self.free.drain(at..));
        take
    }

    /// Hands out the single lowest-address slot (direct-path fallback;
    /// no run accounting — there is no magazine to measure).
    pub(crate) fn pop_one(&mut self) -> Option<*mut T> {
        self.sort();
        let ptr = self.free.pop()?;
        self.refilled += 1;
        Some(ptr)
    }
}

/// A point-in-time snapshot of an arena-backed pool's ledger: the
/// shared [`PoolStats`] plus the arena's own counters. Exact whenever
/// every thread using the pool is at rest. See
/// [`ArenaStats::conservation`] for the identities that must balance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// The common slot ledger (same meaning as for the boxed pool).
    pub pool: PoolStats,
    /// Slots per slab (the pool's chunk capacity).
    pub chunk_capacity: u64,
    /// Aligned slabs mapped so far.
    pub slab_allocs: u64,
    /// Address-ordered magazine refills served by the free store.
    pub run_refills: u64,
    /// Slots ever surrendered into the free store (cumulative).
    pub freed_slots: u64,
    /// Slots ever handed back out of the free store (cumulative).
    pub refilled_slots: u64,
    /// Slots currently parked in the free store.
    pub free_store: u64,
}

impl ArenaStats {
    /// The ledger equalities that must hold whenever every thread using
    /// the pool is at rest, as `(description, lhs, rhs)` — the arena
    /// analogue of the `PoolStats` capacity conservation check.
    pub fn conservation(&self) -> Vec<(&'static str, u64, u64)> {
        vec![
            (
                "every surrendered slot was refilled out or is still parked",
                self.freed_slots,
                self.refilled_slots + self.free_store,
            ),
            (
                "the arena free store is the pool's entire depot",
                self.pool.depot,
                self.free_store,
            ),
            (
                "capacity is exactly the mapped slabs",
                self.pool.capacity,
                self.slab_allocs * self.chunk_capacity,
            ),
            (
                "every slot is in exactly one place",
                self.pool.capacity,
                self.pool.unallocated
                    + self.pool.cached
                    + self.pool.depot
                    + self.pool.in_grace
                    + self.pool.live(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slabs_are_aligned_and_dense() {
        let slab: Slab<[u64; 8]> = Slab::new(16);
        assert_eq!(slab.slot(0) as usize % SLAB_ALIGN, 0, "base aligned");
        for i in 0..16 {
            assert_eq!(
                slab.slot(i) as usize,
                slab.slot(0) as usize + i * std::mem::size_of::<[u64; 8]>(),
                "slots are contiguous"
            );
        }
    }

    #[test]
    fn refill_hands_out_lowest_addresses_first() {
        let slab: Slab<u64> = Slab::new(64);
        let mut store: FreeStore<u64> = FreeStore::new();
        // Surrender slots in a scrambled order.
        for i in [9usize, 3, 7, 1, 5, 40, 42, 41, 2, 8] {
            store.push(slab.slot(i));
        }
        let mut out = Vec::new();
        assert_eq!(store.refill(&mut out, 8), 8);
        // The 8 lowest addresses, regardless of surrender order.
        let got: Vec<usize> = out.iter().map(|p| *p as usize).collect();
        let mut expect: Vec<usize> = [9usize, 3, 7, 1, 5, 2, 8]
            .iter()
            .map(|&i| slab.slot(i) as usize)
            .collect();
        expect.push(slab.slot(40) as usize);
        expect.sort_unstable();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, expect);
        assert_eq!(store.len(), 2, "41 and 42 stay parked");
        assert_eq!(store.freed, 10);
        assert_eq!(store.refilled, 8);
        assert_eq!(store.run_refills, 1);
    }

    #[test]
    fn ledger_balances_through_churn() {
        let slab: Slab<u64> = Slab::new(32);
        let mut store: FreeStore<u64> = FreeStore::new();
        let mut batch: Vec<*mut u64> = (0..32).map(|i| slab.slot(i)).collect();
        store.push_batch(&mut batch);
        assert!(batch.is_empty());
        let mut out = Vec::new();
        store.refill(&mut out, 10);
        store.pop_one().unwrap();
        assert_eq!(store.freed, 32);
        assert_eq!(store.refilled, 11);
        assert_eq!(store.freed, store.refilled + store.len() as u64);
    }
}
