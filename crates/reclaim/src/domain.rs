//! The QSBR domain: thread slots, limbo batches, and collection.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam_utils::CachePadded;

/// Maximum number of concurrently registered threads per domain (shared
/// with the probe's thread-index registry, which keys the pool magazines).
pub use optik_probe::MAX_THREADS;

/// Seal a limbo batch after this many retires.
const BATCH_SIZE: usize = 64;

/// Attempt collection every this many quiescent announcements.
const COLLECT_PERIOD: u64 = 32;

/// Context passed back to a reclamation action: typically the
/// [`crate::NodePool`] a slot should be returned to. Also keeps that owner
/// alive until the action runs.
pub type RetireCtx = Arc<dyn std::any::Any + Send + Sync>;

/// One type-erased retired object.
struct Garbage {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8, Option<RetireCtx>),
    ctx: Option<RetireCtx>,
}

// SAFETY: garbage is only ever dropped by one thread, and the pointed-to
// object was retired by its unique owner.
unsafe impl Send for Garbage {}

/// A sealed batch: retired objects plus the quiescence snapshot that must be
/// "overtaken" before they can be freed.
struct Batch {
    items: Vec<Garbage>,
    /// `(slot index, ts at snapshot)` for every online thread at seal time.
    snapshot: Vec<(u32, u64)>,
    /// Probe timestamp at seal (0 when the probe feature is off); the free
    /// records `now - sealed_at` as the batch's grace latency.
    sealed_at: u64,
}

/// Per-thread slot in the domain's registry.
struct Slot {
    /// Slot claimed by some live handle.
    in_use: AtomicBool,
    /// Thread parked (offline): skipped by snapshots.
    parked: AtomicBool,
    /// Monotonic quiescence counter. Never reset, bumped on register,
    /// unregister, park, unpark, and every quiescent announcement — so
    /// "ts changed since snapshot" always means "passed a quiescent point
    /// or stopped existing", with no ABA across slot reuse.
    ts: AtomicU64,
}

/// Counters exposed for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QsbrStats {
    /// Objects retired into the domain (all threads).
    pub retired: u64,
    /// Objects actually freed so far.
    pub freed: u64,
    /// Threads currently registered.
    pub registered: usize,
}

/// A quiescent-state-based reclamation domain.
///
/// Cheap to share via `Arc`; most users want the process-wide domain from
/// [`crate::global`] instead of creating their own.
pub struct Qsbr {
    slots: Box<[CachePadded<Slot>]>,
    /// Batches abandoned by exiting threads; collected opportunistically.
    orphans: Mutex<Vec<Batch>>,
    retired: AtomicU64,
    freed: AtomicU64,
    registered: AtomicUsize,
}

impl Qsbr {
    /// Creates a new, empty domain.
    pub fn new() -> Arc<Self> {
        let slots = (0..MAX_THREADS)
            .map(|_| {
                CachePadded::new(Slot {
                    in_use: AtomicBool::new(false),
                    parked: AtomicBool::new(false),
                    ts: AtomicU64::new(0),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(Self {
            slots,
            orphans: Mutex::new(Vec::new()),
            retired: AtomicU64::new(0),
            freed: AtomicU64::new(0),
            registered: AtomicUsize::new(0),
        })
    }

    /// Registers the calling thread, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_THREADS`] threads are simultaneously
    /// registered.
    pub fn register(self: &Arc<Self>) -> QsbrHandle {
        for (i, slot) in self.slots.iter().enumerate() {
            if !slot.in_use.load(Ordering::Relaxed)
                && slot
                    .in_use
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                slot.parked.store(false, Ordering::Relaxed);
                slot.ts.fetch_add(1, Ordering::Release);
                self.registered.fetch_add(1, Ordering::Relaxed);
                return QsbrHandle {
                    domain: Arc::clone(self),
                    slot: i as u32,
                    pending: RefCell::new(Vec::with_capacity(BATCH_SIZE)),
                    limbo: RefCell::new(VecDeque::new()),
                    quiesce_count: Cell::new(0),
                };
            }
        }
        panic!("QSBR domain exhausted: more than {MAX_THREADS} registered threads");
    }

    /// Current domain statistics.
    pub fn stats(&self) -> QsbrStats {
        QsbrStats {
            retired: self.retired.load(Ordering::Relaxed),
            freed: self.freed.load(Ordering::Relaxed),
            registered: self.registered.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of every online thread's quiescence counter.
    fn snapshot(&self) -> Vec<(u32, u64)> {
        let mut snap = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.in_use.load(Ordering::Acquire) && !slot.parked.load(Ordering::Acquire) {
                snap.push((i as u32, slot.ts.load(Ordering::Acquire)));
            }
        }
        snap
    }

    /// Whether every thread named in `snapshot` has moved past it.
    fn snapshot_overtaken(&self, snapshot: &[(u32, u64)]) -> bool {
        snapshot.iter().all(|&(i, ts)| {
            let slot = &self.slots[i as usize];
            // ts is monotonic and bumped on every state change, so any
            // difference proves a quiescent point (or exit) after the seal.
            slot.ts.load(Ordering::Acquire) != ts
        })
    }

    /// Frees a batch's contents.
    fn free_batch(&self, batch: Batch) {
        optik_probe::count(optik_probe::Event::GraceBatchFree);
        optik_probe::record(
            optik_probe::HistKind::GraceLatency,
            optik_probe::elapsed(batch.sealed_at, optik_probe::now()),
        );
        let n = batch.items.len() as u64;
        for g in batch.items {
            // SAFETY: the grace period has elapsed — no thread can still
            // hold an in-operation reference to `g.ptr`; the drop_fn was
            // supplied with a pointer of the matching type.
            unsafe { (g.drop_fn)(g.ptr, g.ctx) };
        }
        self.freed.fetch_add(n, Ordering::Relaxed);
    }

    /// Opportunistically frees overtaken orphan batches.
    fn collect_orphans(&self) {
        let Ok(mut orphans) = self.orphans.try_lock() else {
            return;
        };
        let mut ready = Vec::new();
        let mut i = 0;
        while i < orphans.len() {
            if self.snapshot_overtaken(&orphans[i].snapshot) {
                ready.push(orphans.swap_remove(i));
            } else {
                i += 1;
            }
        }
        // Free outside the lock: drop functions may re-enter the domain
        // (e.g. `retire_orphan` for a second grace period).
        drop(orphans);
        for batch in ready {
            self.free_batch(batch);
        }
    }

    /// Retires directly into the domain's orphan list, without a
    /// per-thread handle.
    ///
    /// Usable from drop functions that may run during thread teardown
    /// (where the thread-local handle is no longer accessible) — e.g. to
    /// *re-retire* a pointer for an additional grace period.
    ///
    /// # Safety
    ///
    /// Same contract as [`QsbrHandle::retire_with`].
    pub unsafe fn retire_orphan(
        &self,
        ptr: *mut u8,
        drop_fn: unsafe fn(*mut u8, Option<RetireCtx>),
    ) {
        self.retired.fetch_add(1, Ordering::Relaxed);
        let snapshot = self.snapshot();
        self.orphans
            .lock()
            .expect("orphan list poisoned")
            .push(Batch {
                items: vec![Garbage {
                    ptr,
                    drop_fn,
                    ctx: None,
                }],
                snapshot,
                sealed_at: optik_probe::now(),
            });
    }
}

impl Drop for Qsbr {
    fn drop(&mut self) {
        // All handles hold an Arc to the domain, so at drop time there are no
        // registered threads and every remaining orphan batch is safe. Loop:
        // a freed batch may re-retire into the orphan list (second grace
        // period), which is equally safe to free now.
        loop {
            let orphans = std::mem::take(&mut *self.orphans.lock().unwrap());
            if orphans.is_empty() {
                break;
            }
            for batch in orphans {
                self.free_batch(batch);
            }
        }
    }
}

impl std::fmt::Debug for Qsbr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Qsbr")
            .field("stats", &self.stats())
            .finish()
    }
}

/// A per-thread handle onto a [`Qsbr`] domain.
///
/// Not `Sync`/`Send`: create one per thread via [`Qsbr::register`] (or use
/// the implicit per-thread handles of [`crate::with_local`]).
pub struct QsbrHandle {
    domain: Arc<Qsbr>,
    slot: u32,
    /// Current, unsealed batch of retired objects.
    pending: RefCell<Vec<Garbage>>,
    /// Sealed batches awaiting their grace period, oldest first.
    limbo: RefCell<VecDeque<Batch>>,
    quiesce_count: Cell<u64>,
}

impl QsbrHandle {
    /// Announces a quiescent point: the calling thread holds no references
    /// to any object retired in this domain.
    ///
    /// Call once per data-structure operation (start or end — the paper's
    /// benchmarks do it between iterations).
    #[inline]
    pub fn quiescent(&self) {
        optik_probe::count(optik_probe::Event::EpochAdvance);
        let slot = &self.domain.slots[self.slot as usize];
        slot.ts.fetch_add(1, Ordering::AcqRel);
        let n = self.quiesce_count.get() + 1;
        self.quiesce_count.set(n);
        if n % COLLECT_PERIOD == 0 {
            self.collect();
            self.domain.collect_orphans();
        }
    }

    /// Defers dropping of `ptr` (a `Box::into_raw` pointer) until all
    /// registered threads pass a quiescent point.
    ///
    /// # Safety
    ///
    /// `ptr` must have been produced by `Box::into_raw`, must not be retired
    /// twice, and no new references to it may be created after this call
    /// (it must already be unreachable from the shared structure).
    pub unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        unsafe fn drop_box<T>(p: *mut u8, _ctx: Option<RetireCtx>) {
            // SAFETY: `p` came from `Box::into_raw::<T>` per retire contract.
            unsafe { drop(Box::from_raw(p.cast::<T>())) };
        }
        // SAFETY: forwarded contract; drop_box matches the Box provenance.
        unsafe { self.retire_with(ptr.cast::<u8>(), drop_box::<T>, None) };
    }

    /// Defers an arbitrary reclamation action.
    ///
    /// `ctx` (if provided) is passed to `drop_fn` and kept alive until it
    /// runs — used by [`crate::NodePool`] so the pool outlives slots being
    /// returned to it.
    ///
    /// # Safety
    ///
    /// `drop_fn(ptr, ctx)` must be safe to call exactly once after a grace
    /// period, and `ptr` must already be unreachable to new readers.
    pub unsafe fn retire_with(
        &self,
        ptr: *mut u8,
        drop_fn: unsafe fn(*mut u8, Option<RetireCtx>),
        ctx: Option<RetireCtx>,
    ) {
        self.domain.retired.fetch_add(1, Ordering::Relaxed);
        let mut pending = self.pending.borrow_mut();
        pending.push(Garbage { ptr, drop_fn, ctx });
        if pending.len() >= BATCH_SIZE {
            let items = std::mem::replace(&mut *pending, Vec::with_capacity(BATCH_SIZE));
            drop(pending);
            self.seal(items);
        }
    }

    /// Seals the current pending batch immediately (even if small) so it can
    /// start its grace period.
    pub fn flush(&self) {
        let items = std::mem::take(&mut *self.pending.borrow_mut());
        if !items.is_empty() {
            self.seal(items);
        }
    }

    /// Marks this thread offline: snapshots skip it, so long idle periods do
    /// not stall reclamation. Must not be holding references into any
    /// protected structure.
    pub fn offline(&self) {
        let slot = &self.domain.slots[self.slot as usize];
        slot.ts.fetch_add(1, Ordering::AcqRel);
        slot.parked.store(true, Ordering::Release);
    }

    /// Marks this thread online again after [`QsbrHandle::offline`].
    pub fn online(&self) {
        let slot = &self.domain.slots[self.slot as usize];
        slot.parked.store(false, Ordering::Release);
        slot.ts.fetch_add(1, Ordering::AcqRel);
    }

    /// The domain this handle belongs to.
    pub fn domain(&self) -> &Arc<Qsbr> {
        &self.domain
    }

    /// Number of objects waiting (pending + limbo) in this handle.
    pub fn backlog(&self) -> usize {
        self.pending.borrow().len()
            + self
                .limbo
                .borrow()
                .iter()
                .map(|b| b.items.len())
                .sum::<usize>()
    }

    fn seal(&self, items: Vec<Garbage>) {
        let snapshot = self.domain.snapshot();
        self.limbo.borrow_mut().push_back(Batch {
            items,
            snapshot,
            sealed_at: optik_probe::now(),
        });
        self.collect();
    }

    /// Frees every limbo batch whose snapshot has been overtaken.
    ///
    /// The `limbo` borrow is released before each batch is freed: drop
    /// functions are allowed to re-enter the handle (e.g. to *re-retire*
    /// a pointer for an additional grace period, as the Fraser skip list
    /// does), which touches `pending`/`limbo` again.
    pub fn collect(&self) {
        loop {
            let batch = {
                let mut limbo = self.limbo.borrow_mut();
                match limbo.front() {
                    Some(front) if self.domain.snapshot_overtaken(&front.snapshot) => {
                        limbo.pop_front()
                    }
                    _ => None,
                }
            };
            match batch {
                Some(b) => self.domain.free_batch(b),
                None => break,
            }
        }
    }
}

impl Drop for QsbrHandle {
    fn drop(&mut self) {
        self.flush();
        // Try a final local collection; our own ts bump below helps others.
        let slot = &self.domain.slots[self.slot as usize];
        slot.ts.fetch_add(1, Ordering::AcqRel);
        self.collect();
        // Hand any still-unsafe batches to the domain.
        let leftovers: Vec<Batch> = self.limbo.borrow_mut().drain(..).collect();
        if !leftovers.is_empty() {
            self.domain.orphans.lock().unwrap().extend(leftovers);
        }
        // Release the slot (ts bump above already invalidated snapshots).
        slot.parked.store(false, Ordering::Relaxed);
        slot.in_use.store(false, Ordering::Release);
        self.domain.registered.fetch_sub(1, Ordering::Relaxed);
        self.domain.collect_orphans();
    }
}

impl std::fmt::Debug for QsbrHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QsbrHandle")
            .field("slot", &self.slot)
            .field("backlog", &self.backlog())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DropCounter(Arc<AtomicU64>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn retire_orphan_frees_after_grace_without_a_handle() {
        let domain = Qsbr::new();
        let hits = Arc::new(AtomicU64::new(0));
        unsafe fn bump(p: *mut u8, _ctx: Option<RetireCtx>) {
            // SAFETY: provenance from Box::into_raw below.
            unsafe { drop(Box::from_raw(p.cast::<DropCounter>())) };
        }
        let p = Box::into_raw(Box::new(DropCounter(Arc::clone(&hits))));
        let h = domain.register();
        // SAFETY: never published.
        unsafe { domain.retire_orphan(p.cast(), bump) };
        assert_eq!(hits.load(Ordering::SeqCst), 0, "must wait for grace");
        // Orphans are collected opportunistically (periodic quiescence or
        // handle teardown); handle drop is deterministic for the test.
        drop(h);
        assert_eq!(hits.load(Ordering::SeqCst), 1, "freed after grace");
    }

    #[test]
    fn drop_fn_may_re_retire_for_a_second_grace_period() {
        // A drop function that re-retires (double grace) must not deadlock
        // or double-borrow during collection, including at domain drop.
        let domain = Qsbr::new();
        let hits = Arc::new(AtomicU64::new(0));
        unsafe fn second_hop(p: *mut u8, _ctx: Option<RetireCtx>) {
            // SAFETY: matching provenance; freed exactly once, here.
            unsafe { drop(Box::from_raw(p.cast::<DropCounter>())) };
        }
        unsafe fn first_hop(p: *mut u8, ctx: Option<RetireCtx>) {
            let _ = ctx;
            // Re-retire into the same domain via the thread's handle-free
            // path. SAFETY: forwarded provenance; second_hop frees.
            // The domain is reachable through a global in real callers;
            // in this test the outer scope keeps it alive via leak-free
            // Arc upgrade from the raw context-less path is impossible,
            // so we just free directly after one hop — the re-entrancy
            // being tested is exercised by the nested collect below.
            unsafe { second_hop(p, None) };
        }
        let h = domain.register();
        let p = Box::into_raw(Box::new(DropCounter(Arc::clone(&hits))));
        // SAFETY: never published.
        unsafe { h.retire_with(p.cast(), first_hop, None) };
        h.flush();
        h.quiescent();
        h.quiescent();
        h.collect();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn retire_defers_until_grace_period() {
        let domain = Qsbr::new();
        let drops = Arc::new(AtomicU64::new(0));
        let h1 = domain.register();
        let h2 = domain.register();

        let p = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
        // SAFETY: p is a unique Box pointer, unreachable elsewhere.
        unsafe { h1.retire(p) };
        h1.flush();
        h1.collect();
        // h2 has not announced quiescence since the seal: must not be freed.
        assert_eq!(drops.load(Ordering::SeqCst), 0);

        h2.quiescent();
        h1.quiescent();
        h1.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop((h1, h2));
    }

    #[test]
    fn offline_thread_does_not_stall_reclamation() {
        let domain = Qsbr::new();
        let drops = Arc::new(AtomicU64::new(0));
        let h1 = domain.register();
        let h2 = domain.register();

        h2.offline();
        let p = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
        // SAFETY: unique Box pointer.
        unsafe { h1.retire(p) };
        h1.flush();
        h1.quiescent();
        h1.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        h2.online();
        drop((h1, h2));
    }

    #[test]
    fn handle_drop_orphans_are_freed_eventually() {
        let domain = Qsbr::new();
        let drops = Arc::new(AtomicU64::new(0));
        let h1 = domain.register();
        let h2 = domain.register();

        let p = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
        // SAFETY: unique Box pointer.
        unsafe { h1.retire(p) };
        drop(h1); // flush + orphan (h2 hasn't quiesced)

        h2.quiescent();
        // Orphan collection is periodic; force enough quiescent points.
        for _ in 0..(COLLECT_PERIOD * 2) {
            h2.quiescent();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(h2);
    }

    #[test]
    fn domain_drop_frees_everything() {
        let domain = Qsbr::new();
        let drops = Arc::new(AtomicU64::new(0));
        {
            let h1 = domain.register();
            let _h2 = domain.register(); // never quiesces
            for _ in 0..10 {
                let p = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                // SAFETY: unique Box pointers.
                unsafe { h1.retire(p) };
            }
        }
        drop(domain);
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn stats_track_retired_and_freed() {
        let domain = Qsbr::new();
        let h = domain.register();
        for _ in 0..5 {
            let p = Box::into_raw(Box::new(42u64));
            // SAFETY: unique Box pointers.
            unsafe { h.retire(p) };
        }
        assert_eq!(domain.stats().retired, 5);
        assert_eq!(domain.stats().registered, 1);
        h.flush();
        h.quiescent();
        h.collect();
        assert_eq!(domain.stats().freed, 5);
        drop(h);
        assert_eq!(domain.stats().registered, 0);
    }

    #[test]
    fn slot_reuse_does_not_confuse_snapshots() {
        let domain = Qsbr::new();
        let drops = Arc::new(AtomicU64::new(0));
        let h1 = domain.register();

        // Register/unregister a second thread repeatedly across a retire.
        let h2 = domain.register();
        let p = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
        // SAFETY: unique Box pointer.
        unsafe { h1.retire(p) };
        h1.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(h2); // unregister bumps ts -> snapshot overtaken for that slot
        h1.quiescent();
        h1.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(h1);
    }

    #[test]
    fn concurrent_stress_no_use_after_free() {
        // Producers retire boxed values while all threads keep quiescing;
        // the drop counter at the end must equal the retire count exactly
        // (no double free, no leak).
        let domain = Qsbr::new();
        let drops = Arc::new(AtomicU64::new(0));
        const THREADS: usize = 8;
        const OPS: usize = 20_000;

        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let domain = Arc::clone(&domain);
            let drops = Arc::clone(&drops);
            handles.push(std::thread::spawn(move || {
                let h = domain.register();
                for _ in 0..OPS {
                    let p = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                    // SAFETY: unique Box pointer.
                    unsafe { h.retire(p) };
                    h.quiescent();
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        drop(domain);
        assert_eq!(drops.load(Ordering::SeqCst), (THREADS * OPS) as u64);
    }

    #[test]
    #[should_panic(expected = "QSBR domain exhausted")]
    fn registration_beyond_capacity_panics() {
        let domain = Qsbr::new();
        let mut handles = Vec::new();
        for _ in 0..=MAX_THREADS {
            handles.push(domain.register());
        }
    }
}
