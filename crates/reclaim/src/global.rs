//! The process-wide default QSBR domain and per-thread implicit handles.
//!
//! Data-structure crates use these helpers so their public APIs need no
//! explicit guard/handle arguments: every operation runs inside
//! [`with_local`], and the benchmark loops (like the paper's) announce
//! quiescence once per iteration via [`quiescent`].

use std::cell::OnceCell;
use std::sync::{Arc, OnceLock};

use crate::domain::{Qsbr, QsbrHandle};

static GLOBAL: OnceLock<Arc<Qsbr>> = OnceLock::new();

thread_local! {
    static LOCAL: OnceCell<QsbrHandle> = const { OnceCell::new() };
}

/// The process-wide QSBR domain.
pub fn global() -> &'static Arc<Qsbr> {
    GLOBAL.get_or_init(Qsbr::new)
}

/// Runs `f` with this thread's handle on the global domain, registering the
/// thread on first use. The handle is dropped (and its garbage orphaned to
/// the domain) at thread exit.
pub fn with_local<R>(f: impl FnOnce(&QsbrHandle) -> R) -> R {
    LOCAL.with(|cell| f(cell.get_or_init(|| global().register())))
}

/// Announces a quiescent point for the calling thread on the global domain.
///
/// Call between data-structure operations; never while holding references
/// into a protected structure.
pub fn quiescent() {
    with_local(|h| h.quiescent());
}

/// Marks the calling thread offline in the global domain: reclamation no
/// longer waits for it. Call before blocking (joins, sleeps, I/O) while
/// holding no references into any protected structure; pair with
/// [`online`]. Performing operations while offline is forbidden.
pub fn offline() {
    with_local(|h| h.offline());
}

/// Marks the calling thread online again after [`offline`].
pub fn online() {
    with_local(|h| h.online());
}

/// Runs `f` with the calling thread marked offline (e.g. around a blocking
/// `join()`), restoring online status afterwards.
pub fn offline_while<R>(f: impl FnOnce() -> R) -> R {
    offline();
    let r = f();
    online();
    r
}

/// Retires a `Box::into_raw` pointer into the global domain.
///
/// # Safety
///
/// Same contract as [`QsbrHandle::retire`].
pub unsafe fn retire_global<T: Send>(ptr: *mut T) {
    // SAFETY: forwarded contract.
    with_local(|h| unsafe { h.retire(ptr) });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn global_domain_is_shared() {
        let a = Arc::as_ptr(global());
        let b = std::thread::spawn(|| Arc::as_ptr(global()) as usize)
            .join()
            .unwrap();
        assert_eq!(a as usize, b);
    }

    #[test]
    fn with_local_reuses_one_handle_per_thread() {
        let slot_a = with_local(|h| format!("{h:?}"));
        let slot_b = with_local(|h| format!("{h:?}"));
        assert_eq!(slot_a, slot_b);
    }

    #[test]
    fn retire_global_runs_drop_eventually() {
        struct Probe(Arc<AtomicU64>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        let p = Box::into_raw(Box::new(Probe(Arc::clone(&drops))));
        // SAFETY: unique Box pointer, never touched again.
        unsafe { retire_global(p) };
        with_local(|h| h.flush());
        // Other test threads registered on the global domain may exist; spin
        // a bounded number of quiescent rounds waiting for them to pass.
        for _ in 0..10_000 {
            quiescent();
            with_local(|h| h.collect());
            if drops.load(Ordering::SeqCst) == 1 {
                return;
            }
            std::thread::yield_now();
        }
        // Not an error: another registered thread may be parked forever in
        // this test binary; the object is freed at process teardown instead.
        // But with the test harness's own threads quiescing, this normally
        // completes. Fail loudly so we notice regressions.
        panic!("retired object was never freed");
    }
}
