//! RAII guard layered over the raw OPTIK interface.
//!
//! The data-structure crates use the raw interface directly (matching the
//! paper's code), but for application code a guard that cannot leak a held
//! lock is friendlier. The guard defaults to *revert* on drop — "I made no
//! modification" — and commits (unlock + version bump) only on an explicit
//! [`OptikGuard::commit`], mirroring the pattern's rule that the version
//! must advance exactly when the protected state changed.

use crate::traits::{OptikLock, Version};

/// A held OPTIK lock that reverts on drop unless committed.
#[must_use = "dropping immediately reverts the lock"]
#[derive(Debug)]
pub struct OptikGuard<'a, L: OptikLock> {
    lock: &'a L,
    done: bool,
}

impl<'a, L: OptikLock> OptikGuard<'a, L> {
    /// Attempts the atomic lock-and-validate; returns a guard on success.
    pub fn try_acquire(lock: &'a L, target: Version) -> Option<Self> {
        if lock.try_lock_version(target) {
            Some(Self { lock, done: false })
        } else {
            None
        }
    }

    /// Blocking acquisition; `Err(guard)` when the version did not match
    /// (the caller may still use the critical section or bail by dropping).
    pub fn acquire_validating(lock: &'a L, target: Version) -> Result<Self, Self> {
        if lock.lock_version(target) {
            Ok(Self { lock, done: false })
        } else {
            Err(Self { lock, done: false })
        }
    }

    /// Commits the critical section: releases the lock, advancing the
    /// version so concurrent optimistic work observes the modification.
    pub fn commit(mut self) {
        self.done = true;
        self.lock.unlock();
    }

    /// Explicit alias for dropping: releases the lock restoring the
    /// pre-acquisition version (no modification performed).
    pub fn revert(self) {
        drop(self);
    }
}

impl<L: OptikLock> Drop for OptikGuard<'_, L> {
    fn drop(&mut self) {
        if !self.done {
            self.lock.revert();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OptikTicket, OptikVersioned};

    fn commit_advances_version<L: OptikLock>() {
        let lock = L::default();
        let v0 = lock.get_version();
        let g = OptikGuard::try_acquire(&lock, v0).expect("fresh lock");
        g.commit();
        assert!(!lock.is_locked());
        assert!(!L::is_same_version(v0, lock.get_version()));
    }

    fn drop_reverts_version<L: OptikLock>() {
        let lock = L::default();
        let v0 = lock.get_version();
        {
            let _g = OptikGuard::try_acquire(&lock, v0).expect("fresh lock");
        }
        assert!(!lock.is_locked());
        assert!(L::is_same_version(v0, lock.get_version()));
        // And the original version is still acquirable.
        assert!(lock.try_lock_version(lock.get_version()));
        lock.unlock();
    }

    fn acquire_validating_reports_mismatch<L: OptikLock>() {
        let lock = L::default();
        let stale = lock.get_version();
        OptikGuard::try_acquire(&lock, stale)
            .expect("fresh")
            .commit();
        match OptikGuard::acquire_validating(&lock, stale) {
            Ok(_) => panic!("stale version must not validate"),
            Err(g) => g.revert(),
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn versioned_guard_semantics() {
        commit_advances_version::<OptikVersioned>();
        drop_reverts_version::<OptikVersioned>();
        acquire_validating_reports_mismatch::<OptikVersioned>();
    }

    #[test]
    fn ticket_guard_semantics() {
        commit_advances_version::<OptikTicket>();
        drop_reverts_version::<OptikTicket>();
        acquire_validating_reports_mismatch::<OptikTicket>();
    }

    #[test]
    fn failed_try_acquire_returns_none() {
        let lock = OptikVersioned::new();
        let v = lock.get_version();
        let g = OptikGuard::try_acquire(&lock, v).unwrap();
        assert!(OptikGuard::try_acquire(&lock, v).is_none());
        g.commit();
        assert!(OptikGuard::try_acquire(&lock, v).is_none(), "stale");
    }
}
