//! A reusable retry loop implementing the OPTIK pattern (Figure 2).
//!
//! [`transaction`] packages the "read version → optimistic work →
//! `try_lock_version` → critical section → unlock" loop so application code
//! only supplies the two phases. The optimistic phase can finish the whole
//! operation without synchronizing (e.g. an unsuccessful search) by
//! returning [`TxStep::Return`].

use synchro::Backoff;

use crate::traits::{OptikLock, Version};

/// Decision returned by the optimistic phase of a [`transaction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStep<P, R> {
    /// Finish without synchronizing (e.g. key not found): the transaction
    /// returns this value immediately — the paper's "updates that return
    /// false do not need to synchronize".
    Return(R),
    /// Proceed to lock-and-validate; on success the critical phase receives
    /// the prepared value `P`.
    Commit(P),
}

/// Runs one OPTIK transaction to completion (no backoff between retries).
///
/// `optimistic` is invoked with the version observed at the start of each
/// attempt and must be side-effect free on the shared structure; `critical`
/// runs under the lock exactly once, after a successful single-CAS
/// validation, and its return value is the transaction's result. The lock
/// is released with `unlock` (version advanced): use this for transactions
/// whose critical phase always modifies the protected data.
///
/// # Examples
///
/// ```
/// use optik::{transaction, OptikVersioned, TxStep};
/// use std::cell::Cell;
///
/// let lock = OptikVersioned::new();
/// let shared = Cell::new(41);
/// let out = transaction(&lock, |_v| TxStep::Commit(1), |add| {
///     shared.set(shared.get() + add);
///     shared.get()
/// });
/// assert_eq!(out, 42);
/// ```
pub fn transaction<L: OptikLock, P, R>(
    lock: &L,
    mut optimistic: impl FnMut(Version) -> TxStep<P, R>,
    mut critical: impl FnMut(P) -> R,
) -> R {
    loop {
        let v = lock.get_version();
        if L::is_locked_version(v) {
            synchro::relax();
            continue;
        }
        match optimistic(v) {
            TxStep::Return(r) => return r,
            TxStep::Commit(p) => {
                if lock.try_lock_version(v) {
                    let r = critical(p);
                    lock.unlock();
                    return r;
                }
                // Validation failed: restart the optimistic phase.
            }
        }
    }
}

/// [`transaction`] with the paper's exponential backoff between restarts
/// (capped per [`synchro::Backoff`]): preferable under contention.
pub fn transaction_with_backoff<L: OptikLock, P, R>(
    lock: &L,
    mut optimistic: impl FnMut(Version) -> TxStep<P, R>,
    mut critical: impl FnMut(P) -> R,
) -> R {
    let mut bo = Backoff::adaptive();
    loop {
        let v = lock.get_version();
        if L::is_locked_version(v) {
            bo.backoff();
            continue;
        }
        match optimistic(v) {
            TxStep::Return(r) => return r,
            TxStep::Commit(p) => {
                if lock.try_lock_version(v) {
                    let r = critical(p);
                    lock.unlock();
                    return r;
                }
                bo.backoff();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OptikTicket, OptikVersioned};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn return_short_circuits_without_locking() {
        let lock = OptikVersioned::new();
        let v0 = lock.get_version();
        let out: u32 = transaction(&lock, |_| TxStep::Return::<(), _>(7), |_| unreachable!());
        assert_eq!(out, 7);
        assert_eq!(lock.get_version(), v0, "no lock acquisition happened");
    }

    #[test]
    fn commit_runs_critical_under_lock() {
        let lock = OptikVersioned::new();
        let v0 = lock.get_version();
        let out = transaction(&lock, |_| TxStep::Commit::<_, u32>(5), |p| p * 2);
        assert_eq!(out, 10);
        assert!(!lock.is_locked());
        assert_ne!(lock.get_version(), v0, "commit advanced the version");
    }

    fn contended_sum<L: OptikLock + 'static>(with_backoff: bool) {
        const THREADS: usize = 8;
        const OPS: u64 = 5_000;
        let lock = Arc::new(L::default());
        // Plain u64 protected purely by the OPTIK transaction protocol,
        // observed via an atomic to keep Miri/Rust happy.
        let total = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let total = Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    let body = (
                        |_v: Version| TxStep::Commit::<(), ()>(()),
                        |()| {
                            let t = total.load(Ordering::Relaxed);
                            total.store(t + 1, Ordering::Relaxed);
                        },
                    );
                    if with_backoff {
                        transaction_with_backoff(&*lock, body.0, body.1);
                    } else {
                        transaction(&*lock, body.0, body.1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), THREADS as u64 * OPS);
    }

    #[test]
    fn contended_transactions_are_exact_versioned() {
        contended_sum::<OptikVersioned>(false);
    }

    #[test]
    fn contended_transactions_are_exact_ticket() {
        contended_sum::<OptikTicket>(false);
    }

    #[test]
    fn contended_transactions_with_backoff() {
        contended_sum::<OptikVersioned>(true);
    }

    #[test]
    fn optimistic_phase_sees_fresh_version_on_retry() {
        // Force one failed validation and check the restart observes the
        // newer version.
        let lock = OptikVersioned::new();
        let seen = std::cell::RefCell::new(Vec::new());
        let mut poisoned = false;
        transaction(
            &lock,
            |v| {
                seen.borrow_mut().push(v);
                if !poisoned {
                    poisoned = true;
                    // Simulate a concurrent committer between the version
                    // read and the trylock.
                    assert!(lock.try_lock_version(v));
                    lock.unlock();
                }
                TxStep::Commit::<(), ()>(())
            },
            |()| {},
        );
        let seen = seen.borrow();
        assert_eq!(seen.len(), 2, "one restart");
        assert!(seen[1] > seen[0]);
    }
}
