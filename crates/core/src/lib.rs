//! # OPTIK: optimistic concurrency with merged lock-and-validate
//!
//! This crate implements the core contribution of *"Optimistic Concurrency
//! with OPTIK"* (Guerraoui & Trigonakis, PPoPP 2016): the **OPTIK pattern**
//! and the **OPTIK lock** abstraction.
//!
//! ## The pattern
//!
//! A version number is coupled with a lock at the same granularity. An
//! operation:
//!
//! 1. reads the version (`get_version`),
//! 2. performs *optimistic*, non-synchronized work,
//! 3. atomically acquires the lock **iff** the version is unchanged
//!    (`try_lock_version`) — restarting on failure,
//! 4. performs the critical section,
//! 5. releases the lock, incrementing the version (`unlock`).
//!
//! The single-CAS `try_lock_version` is what distinguishes OPTIK from
//! classic optimistic locking (acquire, *then* validate, possibly having
//! waited behind the lock just to fail): with OPTIK, **if the lock is
//! acquired, the critical section will run**.
//!
//! ## Implementations
//!
//! - [`OptikVersioned`] — one `u64` counter; odd = locked (Figure 4 of the
//!   paper). The default used by all data structures.
//! - [`OptikTicket`] — ticket lock (`ticket`/`current` u32 pair in one
//!   `u64`); fair, exposes queue length ([`OptikTicket::num_queued`]) and
//!   proportional backoff ([`OptikTicket::lock_version_backoff`]).
//! - [`ValidatedLock`] — the paper's Figure-5 straw man: a TTAS lock plus a
//!   *separate* version word, i.e. the OPTIK pattern **without** OPTIK
//!   locks. Kept for the reproduction of Figure 5.
//!
//! ## Example
//!
//! ```
//! use optik::{OptikLock, OptikVersioned};
//!
//! let lock = OptikVersioned::new();
//! // 1. read version
//! let v = lock.get_version();
//! // 2. ... optimistic work ...
//! // 3. lock + validate in one CAS
//! assert!(lock.try_lock_version(v));
//! // 4. ... critical section ...
//! // 5. unlock, incrementing the version
//! lock.unlock();
//! assert!(!OptikVersioned::is_locked_version(lock.get_version()));
//! assert!(!lock.try_lock_version(v), "version moved on");
//! ```

#![warn(missing_docs)]

mod cell;
mod guard;
mod pattern;
mod ticket;
mod traits;
mod validated;
mod versioned;

pub use cell::OptikCell;
pub use guard::OptikGuard;
pub use pattern::{transaction, transaction_with_backoff, TxStep};
pub use ticket::OptikTicket;
pub use traits::{OptikLock, Version};
pub use validated::ValidatedLock;
pub use versioned::OptikVersioned;
