//! A safe, seqlock-style container built on an OPTIK lock.
//!
//! §1 of the paper: "we could imagine using OPTIK, instead of the classic
//! lock interface, wherever a lock can be used. The only requirement is
//! that the critical section must include a read-only prefix". [`OptikCell`]
//! packages the most common such use: a small `Copy` value with
//! wait-free-ish optimistic reads and mutually-exclusive writes — the
//! seqlock functionality §6 notes "OPTIK locks can be used in
//! implementing".
//!
//! Reads snapshot the value and validate the version (restarting on
//! conflict); writes lock, mutate, and unlock (advancing the version).
//! Unlike a seqlock, writers may also *compare-and-update* optimistically
//! via [`OptikCell::try_update`], the OPTIK pattern proper.

use core::cell::UnsafeCell;

use crate::traits::OptikLock;
use crate::versioned::OptikVersioned;

/// A value with optimistic reads and OPTIK-validated writes.
///
/// `T: Copy` because optimistic readers copy the value out while a writer
/// may be mid-store; the version validation discards torn snapshots, but
/// the *copy itself* must be harmless, which `Copy` (no drop, no
/// references) guarantees. Note the read of a torn `T` never materializes:
/// it is copied to private memory and dropped (no drop glue) unless the
/// version validates.
pub struct OptikCell<T: Copy, L: OptikLock = OptikVersioned> {
    lock: L,
    value: UnsafeCell<T>,
}

// SAFETY: writes are mutually exclusive (OPTIK lock); reads validate the
// version so only quiescent snapshots escape.
unsafe impl<T: Copy + Send, L: OptikLock> Send for OptikCell<T, L> {}
unsafe impl<T: Copy + Send + Sync, L: OptikLock> Sync for OptikCell<T, L> {}

impl<T: Copy, L: OptikLock> OptikCell<T, L> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self {
            lock: L::default(),
            value: UnsafeCell::new(value),
        }
    }

    /// Reads a consistent snapshot, restarting while writers interfere.
    pub fn read(&self) -> T {
        loop {
            let v = self.lock.get_version_wait();
            // SAFETY: the copy may race with a writer; `T: Copy` makes the
            // transient copy harmless and the validation below discards it
            // if any writer was concurrent. The release fence in the
            // writer's acquisition pairs with validate()'s acquire fence.
            let snapshot = unsafe { core::ptr::read_volatile(self.value.get()) };
            if self.lock.validate(v) {
                return snapshot;
            }
            synchro::relax();
        }
    }

    /// Replaces the value (blocking write).
    pub fn write(&self, value: T) {
        self.lock.lock();
        // SAFETY: we hold the lock; readers validate against our version.
        unsafe { core::ptr::write_volatile(self.value.get(), value) };
        self.lock.unlock();
    }

    /// Updates the value with `f` under the lock (blocking read-modify-
    /// write).
    pub fn update(&self, f: impl FnOnce(T) -> T) -> T {
        self.lock.lock();
        // SAFETY: exclusive under the lock.
        let new = unsafe {
            let cur = *self.value.get();
            let new = f(cur);
            core::ptr::write_volatile(self.value.get(), new);
            new
        };
        self.lock.unlock();
        new
    }

    /// The OPTIK pattern as an API: computes `f(snapshot)` optimistically;
    /// commits it only if no writer intervened. Returns `Ok(new)` on
    /// commit, `Err(())` if validation failed (caller may retry or give
    /// up — useful for best-effort updates).
    // `Err(())` mirrors the paper's boolean trylock: the only failure is
    // "a writer intervened", which carries no further information.
    #[allow(clippy::result_unit_err)]
    pub fn try_update(&self, f: impl FnOnce(T) -> T) -> Result<T, ()> {
        let v = self.lock.get_version();
        if L::is_locked_version(v) {
            return Err(());
        }
        // SAFETY: torn copies are discarded via validation inside
        // try_lock_version (single CAS: lock + validate).
        let snapshot = unsafe { core::ptr::read_volatile(self.value.get()) };
        let new = f(snapshot);
        if self.lock.try_lock_version(v) {
            // SAFETY: exclusive under the lock; the snapshot was taken at
            // version v, which just validated.
            unsafe { core::ptr::write_volatile(self.value.get(), new) };
            self.lock.unlock();
            Ok(new)
        } else {
            Err(())
        }
    }

    /// Retrying [`OptikCell::try_update`] with exponential backoff.
    pub fn update_optimistic(&self, mut f: impl FnMut(T) -> T) -> T {
        let mut bo = synchro::Backoff::adaptive();
        loop {
            match self.try_update(&mut f) {
                Ok(new) => return new,
                Err(()) => bo.backoff(),
            }
        }
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Mutable access without synchronization (`&mut self` proves unique).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: Copy + core::fmt::Debug, L: OptikLock> core::fmt::Debug for OptikCell<T, L> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OptikCell")
            .field("value", &self.read())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OptikTicket;
    use std::sync::Arc;

    #[test]
    fn read_write_roundtrip() {
        let c: OptikCell<(u64, u64)> = OptikCell::new((1, 2));
        assert_eq!(c.read(), (1, 2));
        c.write((3, 4));
        assert_eq!(c.read(), (3, 4));
        assert_eq!(c.update(|(a, b)| (a + 1, b + 1)), (4, 5));
        assert_eq!(c.into_inner(), (4, 5));
    }

    #[test]
    fn try_update_applies_or_reports_conflict() {
        let c: OptikCell<u64> = OptikCell::new(10);
        assert_eq!(c.try_update(|x| x * 2), Ok(20));
        assert_eq!(c.read(), 20);
        assert_eq!(c.update_optimistic(|x| x + 1), 21);
    }

    #[test]
    fn ticket_lock_variant() {
        let c: OptikCell<u64, OptikTicket> = OptikCell::new(5);
        assert_eq!(c.read(), 5);
        c.write(6);
        assert_eq!(c.update_optimistic(|x| x * 7), 42);
    }

    #[test]
    fn readers_never_see_torn_pairs() {
        // The classic seqlock test: writers keep both halves equal; any
        // torn read surfaces as a mismatched pair.
        let c: Arc<OptikCell<(u64, u64)>> = Arc::new(OptikCell::new((0, 0)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 1..=synchro::stress::ops(50_000) {
                    c.update_optimistic(|_| (i, i));
                }
            }));
        }
        for _ in 0..4 {
            let c = Arc::clone(&c);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (a, b) = c.read();
                    assert_eq!(a, b, "torn snapshot escaped validation");
                }
            }));
        }
        for h in handles.drain(..2) {
            h.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_optimistic_counting_is_exact() {
        let c: Arc<OptikCell<u64>> = Arc::new(OptikCell::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let iters = synchro::stress::ops(10_000);
                for _ in 0..iters {
                    c.update_optimistic(|x| x + 1);
                }
                iters
            }));
        }
        let mut expected = 0;
        for h in handles {
            expected += h.join().unwrap();
        }
        assert_eq!(c.read(), expected);
    }
}
