//! The OPTIK pattern *without* OPTIK locks: the Figure-5 straw man.
//!
//! "We implement this behavior using 8 bytes; 4 bytes for a
//! test-and-test-and-set (TTAS) lock and 4 bytes for the version number.
//! The version number is validated and incremented while holding the lock."
//! (§3.2). A thread must therefore *acquire the lock first* — possibly
//! contending for it — just to discover that its version is stale, which is
//! precisely the wasted work OPTIK locks eliminate.

use core::sync::atomic::{AtomicU32, Ordering};

/// A TTAS lock plus a separate version word (non-OPTIK validation baseline).
#[derive(Debug, Default)]
pub struct ValidatedLock {
    locked: AtomicU32,
    version: AtomicU32,
}

impl ValidatedLock {
    /// Creates a fresh, unlocked lock with version 0.
    pub const fn new() -> Self {
        Self {
            locked: AtomicU32::new(0),
            version: AtomicU32::new(0),
        }
    }

    /// Reads the current version.
    #[inline]
    pub fn get_version(&self) -> u32 {
        self.version.load(Ordering::Acquire)
    }

    /// Acquires the lock (TTAS), then validates `target` against the
    /// version. On mismatch the lock is released and `false` returned — the
    /// contended acquisition was wasted, which is the point of the straw
    /// man. On success the caller holds the lock.
    pub fn lock_and_validate(&self, target: u32) -> bool {
        self.lock_raw();
        if self.version.load(Ordering::Relaxed) == target {
            true
        } else {
            self.unlock_raw();
            false
        }
    }

    /// Like [`ValidatedLock::lock_and_validate`], counting atomic
    /// swap/CAS instructions issued while acquiring (for Figure 5's
    /// "# CAS per validation" series).
    pub fn lock_and_validate_counting(&self, target: u32) -> (bool, u32) {
        let cas = self.lock_raw_counting();
        if self.version.load(Ordering::Relaxed) == target {
            (true, cas)
        } else {
            self.unlock_raw();
            (false, cas)
        }
    }

    /// Completes a successful critical section: bumps the version and
    /// releases the lock. Caller must hold the lock.
    #[inline]
    pub fn commit_unlock(&self) {
        // Holder-only, so a plain bump is race-free; Release publishes the
        // critical section together with the new version.
        let v = self.version.load(Ordering::Relaxed);
        self.version.store(v.wrapping_add(1), Ordering::Release);
        self.unlock_raw();
    }

    /// Releases the lock without bumping the version (no modification).
    #[inline]
    pub fn abort_unlock(&self) {
        self.unlock_raw();
    }

    /// Whether the lock is currently held.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed) != 0
    }

    #[inline]
    fn lock_raw(&self) {
        loop {
            while self.locked.load(Ordering::Relaxed) != 0 {
                synchro::relax();
            }
            if self.locked.swap(1, Ordering::Acquire) == 0 {
                return;
            }
        }
    }

    #[inline]
    fn lock_raw_counting(&self) -> u32 {
        let mut cas = 0;
        loop {
            while self.locked.load(Ordering::Relaxed) != 0 {
                synchro::relax();
            }
            cas += 1;
            if self.locked.swap(1, Ordering::Acquire) == 0 {
                return cas;
            }
        }
    }

    #[inline]
    fn unlock_raw(&self) {
        self.locked.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn validate_succeeds_then_stale_fails() {
        let l = ValidatedLock::new();
        let v = l.get_version();
        assert!(l.lock_and_validate(v));
        l.commit_unlock();
        assert!(!l.is_locked());
        assert!(!l.lock_and_validate(v), "version advanced");
        assert!(!l.is_locked(), "failed validation must release the lock");
    }

    #[test]
    fn abort_does_not_advance_version() {
        let l = ValidatedLock::new();
        let v = l.get_version();
        assert!(l.lock_and_validate(v));
        l.abort_unlock();
        assert_eq!(l.get_version(), v);
        assert!(l.lock_and_validate(v), "aborted section is invisible");
        l.commit_unlock();
    }

    #[test]
    fn counting_reports_at_least_one_swap() {
        let l = ValidatedLock::new();
        let (ok, cas) = l.lock_and_validate_counting(l.get_version());
        assert!(ok);
        assert!(cas >= 1);
        l.commit_unlock();
    }

    #[test]
    fn concurrent_validated_increments_are_exact() {
        const THREADS: usize = 8;
        const OPS: u64 = 10_000;
        let lock = Arc::new(ValidatedLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    loop {
                        let v = lock.get_version();
                        if lock.lock_and_validate(v) {
                            let x = counter.load(Ordering::Relaxed);
                            counter.store(x + 1, Ordering::Relaxed);
                            lock.commit_unlock();
                            break;
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * OPS);
    }

    #[test]
    fn version_wraps_without_breaking_lock() {
        let l = ValidatedLock {
            locked: AtomicU32::new(0),
            version: AtomicU32::new(u32::MAX),
        };
        let v = l.get_version();
        assert!(l.lock_and_validate(v));
        l.commit_unlock();
        assert_eq!(l.get_version(), 0);
        assert!(!l.is_locked());
    }
}
