//! The OPTIK-lock abstraction (§3.2 of the paper).

/// Release fence issued immediately after every successful lock
/// acquisition, *before* any critical-section store.
///
/// Why: optimistic readers validate snapshots by re-reading the version
/// after their data reads (seqlock style). For that validation to be sound,
/// a reader that observed one of our critical-section stores must also
/// observe the version as locked/advanced. The reader's acquire fence (in
/// [`OptikLock::validate`]) pairs with this release fence through the data
/// access itself. On x86 both fences compile to nothing.
#[inline]
pub(crate) fn acquired_fence() {
    core::sync::atomic::fence(core::sync::atomic::Ordering::Release);
}

/// An OPTIK version. Opaque: compare only through
/// [`OptikLock::is_same_version`] / [`OptikLock::is_locked_version`].
///
/// For [`crate::OptikVersioned`] this is the raw counter (odd = locked);
/// for [`crate::OptikTicket`] it packs both ticket halves.
pub type Version = u64;

/// The extended lock interface of the paper (§3.2).
///
/// Every implementation must provide *atomic* locking-and-validation: a
/// successful [`OptikLock::try_lock_version`] proves, with a single
/// compare-and-swap, that no conflicting critical section completed since
/// the version was read.
///
/// # Protocol
///
/// `unlock` and `revert` may only be called by the current lock holder;
/// they are safe functions because misuse cannot break memory safety of the
/// lock itself, but it breaks the mutual-exclusion guarantee for the data
/// the caller protects — exactly as with any raw lock. Data structures in
/// this workspace encapsulate the protocol internally.
pub trait OptikLock: Default + Send + Sync {
    /// Reads the current version (acquire semantics: optimistic reads that
    /// follow cannot be reordered before this load).
    fn get_version(&self) -> Version;

    /// Spins until the lock is free, then returns that free version.
    ///
    /// Used when the caller needs a version that is *not locked* as the
    /// baseline for later validation (e.g. the array-map search of §4.1).
    fn get_version_wait(&self) -> Version;

    /// Acquires the lock iff it is free **and** its version equals
    /// `target`. Single-CAS; returns whether the lock was acquired.
    fn try_lock_version(&self, target: Version) -> bool;

    /// Like [`OptikLock::try_lock_version`], additionally reporting how many
    /// CAS instructions were issued (0 when the pre-check short-circuits).
    /// Used by the Figure-5 reproduction.
    fn try_lock_version_counting(&self, target: Version) -> (bool, u32) {
        // Default: one CAS per attempt (implementations refine this).
        (self.try_lock_version(target), 1)
    }

    /// Blocking acquisition: spins until the lock is acquired, then returns
    /// whether the version at acquisition equaled `target` (i.e. whether
    /// the optimistic work is still valid).
    fn lock_version(&self, target: Version) -> bool;

    /// Blocking acquisition with no validation; returns the version that
    /// was acquired (useful as a plain lock).
    fn lock(&self) -> Version;

    /// Releases the lock, incrementing the version to signal a completed
    /// modification. Caller must hold the lock.
    fn unlock(&self);

    /// Releases the lock, *restoring* the pre-acquisition version: used when
    /// the critical section made no modification, to avoid signalling false
    /// conflicts to concurrent optimistic readers.
    ///
    /// Implementations unable to restore the version exactly in the current
    /// state (e.g. a ticket lock with queued waiters) fall back to a normal
    /// unlock; this is always correct, merely less precise.
    fn revert(&self);

    /// Whether a version value represents a locked state.
    fn is_locked_version(v: Version) -> bool;

    /// Validates that the version still equals `target`, with the memory
    /// ordering a seqlock-style read-side critical section needs: an acquire
    /// fence first, so the optimistic data reads that precede the call
    /// cannot be reordered past the version re-check.
    ///
    /// Use this (not a bare [`OptikLock::get_version`] comparison) to
    /// validate read-only snapshots, as in the array-map search of §4.1.
    fn validate(&self, target: Version) -> bool {
        core::sync::atomic::fence(core::sync::atomic::Ordering::Acquire);
        let now = self.get_version();
        // A currently-held lock means a writer may be mid-modification: the
        // snapshot cannot be trusted even if the version half still matches
        // (relevant for ticket locks, whose version ignores the queue half).
        !Self::is_locked_version(now) && Self::is_same_version(now, target)
    }

    /// Whether two versions are the same (ignoring lock bits where the
    /// representation has any).
    fn is_same_version(a: Version, b: Version) -> bool {
        a == b
    }

    /// Whether the lock is currently held.
    fn is_locked(&self) -> bool {
        Self::is_locked_version(self.get_version())
    }
}

/// Instantiates the conformance suite for a lock type.
#[cfg(test)]
macro_rules! optik_conformance_tests {
    ($lock:ty) => {
        mod conformance_suite {
            use super::*;
            use crate::traits::conformance as c;

            #[test]
            fn fresh_lock_is_free() {
                c::fresh_lock_is_free::<$lock>();
            }
            #[test]
            fn try_lock_version_succeeds_on_matching_version() {
                c::try_lock_version_succeeds_on_matching_version::<$lock>();
            }
            #[test]
            fn try_lock_version_fails_on_stale_version() {
                c::try_lock_version_fails_on_stale_version::<$lock>();
            }
            #[test]
            fn try_lock_version_fails_while_locked() {
                c::try_lock_version_fails_while_locked::<$lock>();
            }
            #[test]
            fn unlock_advances_version_revert_restores_it() {
                c::unlock_advances_version_revert_restores_it::<$lock>();
            }
            #[test]
            fn lock_version_reports_match() {
                c::lock_version_reports_match::<$lock>();
            }
            #[test]
            fn get_version_wait_returns_free_version() {
                c::get_version_wait_returns_free_version::<$lock>();
            }
            #[test]
            fn plain_lock_returns_acquired_version() {
                c::plain_lock_returns_acquired_version::<$lock>();
            }
            #[test]
            fn concurrent_increments_are_exact() {
                c::concurrent_increments_are_exact::<$lock>();
            }
            #[test]
            fn readers_never_see_torn_snapshots() {
                c::readers_never_see_torn_snapshots::<$lock>();
            }
        }
    };
}

#[cfg(test)]
pub(crate) use optik_conformance_tests;

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared conformance suite run against every implementation.

    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    pub fn fresh_lock_is_free<L: OptikLock>() {
        let l = L::default();
        assert!(!l.is_locked());
        let v = l.get_version();
        assert!(!L::is_locked_version(v));
    }

    pub fn try_lock_version_succeeds_on_matching_version<L: OptikLock>() {
        let l = L::default();
        let v = l.get_version();
        assert!(l.try_lock_version(v));
        assert!(l.is_locked());
        l.unlock();
        assert!(!l.is_locked());
    }

    pub fn try_lock_version_fails_on_stale_version<L: OptikLock>() {
        let l = L::default();
        let stale = l.get_version();
        // Complete one critical section.
        assert!(l.try_lock_version(stale));
        l.unlock();
        // The stale version must now be rejected.
        assert!(!l.try_lock_version(stale));
    }

    pub fn try_lock_version_fails_while_locked<L: OptikLock>() {
        let l = L::default();
        let v = l.get_version();
        assert!(l.try_lock_version(v));
        let v2 = l.get_version();
        assert!(L::is_locked_version(v2));
        assert!(!l.try_lock_version(v2), "locked version must be rejected");
        assert!(!l.try_lock_version(v), "lock is held");
        l.unlock();
    }

    pub fn unlock_advances_version_revert_restores_it<L: OptikLock>() {
        let l = L::default();
        let v0 = l.get_version();
        assert!(l.try_lock_version(v0));
        l.unlock();
        let v1 = l.get_version();
        assert!(!L::is_same_version(v0, v1), "unlock must advance version");

        assert!(l.try_lock_version(v1));
        l.revert();
        let v2 = l.get_version();
        assert!(
            L::is_same_version(v1, v2),
            "revert with no waiters must restore the version"
        );
        // And the restored version must still be acquirable.
        assert!(l.try_lock_version(v2));
        l.unlock();
    }

    pub fn lock_version_reports_match<L: OptikLock>() {
        let l = L::default();
        let v = l.get_version();
        assert!(l.lock_version(v), "nothing changed: must validate");
        l.unlock();
        assert!(!l.lock_version(v), "version advanced: must report mismatch");
        l.unlock();
    }

    pub fn get_version_wait_returns_free_version<L: OptikLock>() {
        let l = L::default();
        let v = l.get_version_wait();
        assert!(!L::is_locked_version(v));
        assert!(l.try_lock_version(v));
        l.unlock();
    }

    pub fn plain_lock_returns_acquired_version<L: OptikLock>() {
        let l = L::default();
        let v = l.lock();
        assert!(!L::is_locked_version(v), "returned version is the free one");
        l.unlock();
        let v2 = l.lock();
        assert!(!L::is_same_version(v, v2));
        l.unlock();
    }

    /// Critical sections guarded by `try_lock_version` retry loops must be
    /// mutually exclusive and every completed one must advance the version.
    pub fn concurrent_increments_are_exact<L: OptikLock + 'static>() {
        const THREADS: usize = 8;
        const OPS: u64 = 20_000;
        let lock = Arc::new(L::default());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    loop {
                        let v = lock.get_version();
                        if L::is_locked_version(v) {
                            synchro::relax();
                            continue;
                        }
                        if lock.try_lock_version(v) {
                            let x = counter.load(Ordering::Relaxed);
                            counter.store(x + 1, Ordering::Relaxed);
                            lock.unlock();
                            break;
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * OPS);
    }

    /// A writer loop plus optimistic readers that validate snapshots: a
    /// reader must never observe a torn pair under a validated version.
    pub fn readers_never_see_torn_snapshots<L: OptikLock + 'static>() {
        const WRITES: u64 = 30_000;
        let lock = Arc::new(L::default());
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicU64::new(0));

        let writer = {
            let (lock, a, b) = (Arc::clone(&lock), Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                for i in 1..=WRITES {
                    let v = lock.lock();
                    let _ = v;
                    a.store(i, Ordering::Relaxed);
                    b.store(i, Ordering::Relaxed);
                    lock.unlock();
                }
            })
        };
        let mut readers = Vec::new();
        for _ in 0..4 {
            let (lock, a, b, stop) = (
                Arc::clone(&lock),
                Arc::clone(&a),
                Arc::clone(&b),
                Arc::clone(&stop),
            );
            readers.push(std::thread::spawn(move || {
                let mut validated = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    let v = lock.get_version_wait();
                    let ra = a.load(Ordering::Relaxed);
                    let rb = b.load(Ordering::Relaxed);
                    if lock.validate(v) {
                        assert_eq!(ra, rb, "validated snapshot was torn");
                        validated += 1;
                    }
                }
                assert!(validated > 0, "reader never validated anything");
            }));
        }
        writer.join().unwrap();
        // Give readers a quiet window so each is guaranteed to validate at
        // least one snapshot before we stop them.
        std::thread::sleep(std::time::Duration::from_millis(50));
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }
}
