//! OPTIK lock on top of a ticket lock.
//!
//! The implementation the name OPTIK comes from ("optimistic concurrency
//! with ticket locks", footnote 1 of the paper). The lock is a `u64`
//! packing two `u32`s: `current` (low half — being served, doubles as the
//! version number) and `ticket` (high half — next ticket to hand out). The
//! lock is free iff `ticket == current`.
//!
//! Extras over the versioned implementation (§3.2):
//!
//! - [`OptikTicket::num_queued`] — how many threads hold or wait for the
//!   lock, read directly from `ticket - current`. The victim-queue design
//!   (§5.4) keys off this.
//! - [`OptikTicket::lock_version_backoff`] — blocking acquisition that
//!   backs off proportionally to the thread's distance in the queue.
//!
//! The version half is 32 bits, so a thread that stores a version and then
//! sleeps for 2^32 acquisitions could validate incorrectly (paper footnote
//! 6 estimates ≥ 40 s of sleeping on hardware delivering an impossible
//! 100 M acquisitions/s). The versioned implementation has no such caveat.

use core::sync::atomic::{AtomicU64, Ordering};

use crate::traits::{OptikLock, Version};

const TICKET_SHIFT: u32 = 32;
const ONE_TICKET: u64 = 1 << TICKET_SHIFT;
const CURRENT_MASK: u64 = u32::MAX as u64;

#[inline]
fn ticket_of(w: u64) -> u32 {
    (w >> TICKET_SHIFT) as u32
}

#[inline]
fn current_of(w: u64) -> u32 {
    (w & CURRENT_MASK) as u32
}

#[inline]
fn pack(ticket: u32, current: u32) -> u64 {
    (u64::from(ticket) << TICKET_SHIFT) | u64::from(current)
}

/// The ticket-lock OPTIK implementation.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct OptikTicket {
    word: AtomicU64,
}

impl OptikTicket {
    /// Creates a fresh, unlocked lock (version 0).
    pub const fn new() -> Self {
        Self {
            word: AtomicU64::new(0),
        }
    }

    /// Number of threads holding or queued for the lock (0 = free).
    ///
    /// `optik_num_queued` in the paper: with a value of 3, the lock is held
    /// and two more threads wait.
    #[inline]
    pub fn num_queued(&self) -> u32 {
        let w = self.word.load(Ordering::Relaxed);
        ticket_of(w).wrapping_sub(current_of(w))
    }

    /// Blocking acquisition with distance-proportional backoff
    /// (`optik_lock_backoff`). Returns the version at acquisition.
    pub fn lock_backoff(&self) -> Version {
        let w = self.word.fetch_add(ONE_TICKET, Ordering::Relaxed);
        let my = ticket_of(w);
        loop {
            let w = self.word.load(Ordering::Acquire);
            let cur = current_of(w);
            if cur == my {
                crate::traits::acquired_fence();
                // Free-shaped word, consistent with `lock()`.
                return pack(my, my);
            }
            let distance = my.wrapping_sub(cur);
            synchro::backoff::proportional(distance.min(1024), 32);
        }
    }

    /// Blocking `lock_version` with proportional backoff: acquires the lock,
    /// returns whether the version at acquisition matched `target`.
    pub fn lock_version_backoff(&self, target: Version) -> bool {
        let w = self.word.fetch_add(ONE_TICKET, Ordering::Relaxed);
        let my = ticket_of(w);
        loop {
            let w = self.word.load(Ordering::Acquire);
            let cur = current_of(w);
            if cur == my {
                crate::traits::acquired_fence();
                return u64::from(cur) == target & CURRENT_MASK;
            }
            let distance = my.wrapping_sub(cur);
            synchro::backoff::proportional(distance.min(1024), 32);
        }
    }
}

impl OptikLock for OptikTicket {
    #[inline]
    fn get_version(&self) -> Version {
        // Full word: `is_locked_version` needs both halves. Version
        // comparisons only look at the `current` half.
        self.word.load(Ordering::Acquire)
    }

    #[inline]
    fn get_version_wait(&self) -> Version {
        loop {
            let w = self.word.load(Ordering::Acquire);
            if ticket_of(w) == current_of(w) {
                return w;
            }
            synchro::relax();
        }
    }

    #[inline]
    fn try_lock_version(&self, target: Version) -> bool {
        let cur = current_of(target);
        // Acquire iff free (ticket == current) at the target version.
        let expected = pack(cur, cur);
        if self.word.load(Ordering::Relaxed) != expected {
            return false;
        }
        let locked = pack(cur.wrapping_add(1), cur);
        let ok = self
            .word
            .compare_exchange(expected, locked, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            crate::traits::acquired_fence();
        }
        ok
    }

    #[inline]
    fn try_lock_version_counting(&self, target: Version) -> (bool, u32) {
        let cur = current_of(target);
        let expected = pack(cur, cur);
        if self.word.load(Ordering::Relaxed) != expected {
            return (false, 0);
        }
        let locked = pack(cur.wrapping_add(1), cur);
        let ok = self
            .word
            .compare_exchange(expected, locked, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            crate::traits::acquired_fence();
        }
        (ok, 1)
    }

    #[inline]
    fn lock_version(&self, target: Version) -> bool {
        let w = self.word.fetch_add(ONE_TICKET, Ordering::Relaxed);
        let my = ticket_of(w);
        loop {
            let w = self.word.load(Ordering::Acquire);
            if current_of(w) == my {
                crate::traits::acquired_fence();
                return u64::from(my) == target & CURRENT_MASK;
            }
            synchro::relax();
        }
    }

    #[inline]
    fn lock(&self) -> Version {
        let w = self.word.fetch_add(ONE_TICKET, Ordering::Relaxed);
        let my = ticket_of(w);
        loop {
            let w = self.word.load(Ordering::Acquire);
            if current_of(w) == my {
                crate::traits::acquired_fence();
                // Report the version as a *free-shaped* word so a subsequent
                // try_lock_version(reported) on the restored state succeeds.
                return pack(my, my);
            }
            synchro::relax();
        }
    }

    #[inline]
    fn unlock(&self) {
        // Holder-only: bump `current` (wrapping within its own 32 bits — a
        // plain fetch_add(1) would carry into the ticket half when current
        // is u32::MAX and corrupt the queue). Only the ticket half can
        // change concurrently (waiters taking tickets), so the CAS loop
        // retries at most once per arriving waiter.
        let mut w = self.word.load(Ordering::Relaxed);
        loop {
            let new = pack(ticket_of(w), current_of(w).wrapping_add(1));
            match self
                .word
                .compare_exchange_weak(w, new, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => w = observed,
            }
        }
    }

    #[inline]
    fn revert(&self) {
        // Holder with no waiters: give our ticket back, restoring the
        // version. With waiters queued this is impossible (they already
        // hold tickets), so fall back to a normal unlock; the version then
        // advances, which can cause spurious validation failures but never
        // incorrect validations.
        let w = self.word.load(Ordering::Relaxed);
        let cur = current_of(w);
        if ticket_of(w) == cur.wrapping_add(1) {
            let restored = pack(cur, cur);
            if self
                .word
                .compare_exchange(w, restored, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
        self.unlock();
    }

    #[inline]
    fn is_locked_version(v: Version) -> bool {
        ticket_of(v) != current_of(v)
    }

    #[inline]
    fn is_same_version(a: Version, b: Version) -> bool {
        // Versions are the `current` half; the ticket half only encodes
        // queue state.
        a & CURRENT_MASK == b & CURRENT_MASK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::optik_conformance_tests;

    optik_conformance_tests!(OptikTicket);

    #[test]
    fn num_queued_reflects_holder_and_waiters() {
        let l = OptikTicket::new();
        assert_eq!(l.num_queued(), 0);
        let v = l.get_version();
        assert!(l.try_lock_version(v));
        assert_eq!(l.num_queued(), 1);
        l.unlock();
        assert_eq!(l.num_queued(), 0);
    }

    #[test]
    fn revert_with_waiters_falls_back_to_unlock() {
        use std::sync::Arc;
        let l = Arc::new(OptikTicket::new());
        let v0 = l.get_version();
        assert!(l.try_lock_version(v0));

        // Queue a waiter (it will block in lock()).
        let waiter = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                let _v = l.lock();
                l.unlock();
            })
        };
        while l.num_queued() < 2 {
            synchro::relax();
        }
        // Revert cannot restore the version now; it must unlock instead so
        // the waiter gets served.
        l.revert();
        waiter.join().unwrap();
        assert_eq!(l.num_queued(), 0);
        // Version advanced twice (fallback unlock + waiter's unlock).
        let v_now = l.get_version();
        assert!(!OptikTicket::is_same_version(v0, v_now));
    }

    #[test]
    fn version_half_wraps_safely() {
        // Seed current near u32::MAX and check wrap keeps lock usable.
        let l = OptikTicket {
            word: AtomicU64::new(pack(u32::MAX, u32::MAX)),
        };
        let v = l.get_version();
        assert!(!OptikTicket::is_locked_version(v));
        assert!(l.try_lock_version(v));
        l.unlock(); // current wraps to 0... ticket already wrapped to 0 too
        let v = l.get_version();
        assert!(!OptikTicket::is_locked_version(v));
        assert!(l.try_lock_version(v));
        l.unlock();
    }

    #[test]
    fn lock_version_backoff_validates() {
        let l = OptikTicket::new();
        let v = l.get_version();
        assert!(l.lock_version_backoff(v));
        l.unlock();
        assert!(!l.lock_version_backoff(v));
        l.unlock();
    }

    #[test]
    fn counting_skips_cas_when_held_or_stale() {
        let l = OptikTicket::new();
        let v0 = l.get_version();
        assert!(l.try_lock_version(v0));
        let (ok, cas) = l.try_lock_version_counting(v0);
        assert!(!ok);
        assert_eq!(cas, 0);
        l.unlock();
        let (ok, cas) = l.try_lock_version_counting(v0);
        assert!(!ok, "stale version");
        assert_eq!(cas, 0);
        let (ok, cas) = l.try_lock_version_counting(l.get_version());
        assert!(ok);
        assert_eq!(cas, 1);
        l.unlock();
    }
}
