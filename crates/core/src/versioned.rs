//! OPTIK lock on top of a versioned lock (Figure 4 of the paper).
//!
//! A single 8-byte counter: even = free, odd = locked. Acquisition CASes an
//! even value `v` to `v + 1`; `unlock` increments again (to the next even
//! value, advancing the version), `revert` decrements (restoring the
//! pre-acquisition version). A thread would have to sleep for 2^63
//! acquisitions for the version to wrap into a false validation.

use core::sync::atomic::Ordering;

// The lock word is the central OPTIK validation point, so it lives in the
// schedulable shim type: identical codegen to a raw `AtomicU64` in normal
// builds, a yield point per access under `--cfg optik_explore` so the
// deterministic explorer can enumerate every try_lock_version race.
use synchro::shim::AtomicU64;

use crate::traits::{OptikLock, Version};

const LOCKED_BIT: u64 = 0x1;

/// The versioned-lock OPTIK implementation (the paper's default; ours too).
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct OptikVersioned {
    word: AtomicU64,
}

impl OptikVersioned {
    /// Creates a fresh, unlocked lock with version 0 (`OPTIK_INIT`).
    pub const fn new() -> Self {
        Self {
            word: AtomicU64::new(0),
        }
    }

    /// Creates a lock seeded at an arbitrary (even) version — handy for
    /// tests exercising wrap-around behaviour.
    pub const fn with_version(v: u64) -> Self {
        Self {
            word: AtomicU64::new(v & !LOCKED_BIT),
        }
    }
}

impl OptikLock for OptikVersioned {
    #[inline]
    fn get_version(&self) -> Version {
        self.word.load(Ordering::Acquire)
    }

    #[inline]
    fn get_version_wait(&self) -> Version {
        loop {
            let v = self.word.load(Ordering::Acquire);
            if v & LOCKED_BIT == 0 {
                return v;
            }
            synchro::relax();
        }
    }

    #[inline]
    fn try_lock_version(&self, target: Version) -> bool {
        // Pre-checks (paper, Fig. 4 lines 6–7): a locked target can never be
        // CASed (we would make an odd value even), and a mismatched current
        // version makes the CAS pointless — skip the expensive instruction.
        // Relaxed is sound here: the load is a pure fast-fail hint. A stale
        // value can only cause a spurious failure (the caller revalidates and
        // retries, OPTIK style) or a spurious pass, in which case the CAS
        // below re-checks the value with Acquire and is the real gate.
        if target & LOCKED_BIT != 0 || self.word.load(Ordering::Relaxed) != target {
            optik_probe::count(optik_probe::Event::ValidationFail);
            return false;
        }
        let ok = self
            .word
            .compare_exchange(target, target + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            crate::traits::acquired_fence();
            optik_probe::lock_acquired();
        } else {
            optik_probe::count(optik_probe::Event::ValidationFail);
        }
        ok
    }

    #[inline]
    fn try_lock_version_counting(&self, target: Version) -> (bool, u32) {
        if target & LOCKED_BIT != 0 || self.word.load(Ordering::Relaxed) != target {
            optik_probe::count(optik_probe::Event::ValidationFail);
            return (false, 0);
        }
        let ok = self
            .word
            .compare_exchange(target, target + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            crate::traits::acquired_fence();
            optik_probe::lock_acquired();
        } else {
            optik_probe::count(optik_probe::Event::ValidationFail);
        }
        (ok, 1)
    }

    #[inline]
    fn lock_version(&self, target: Version) -> bool {
        loop {
            let mut cur = self.word.load(Ordering::Relaxed);
            while cur & LOCKED_BIT != 0 {
                synchro::relax();
                cur = self.word.load(Ordering::Relaxed);
            }
            if self
                .word
                .compare_exchange(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                crate::traits::acquired_fence();
                optik_probe::lock_acquired();
                if cur != target {
                    // Acquired, but the version moved past the caller's
                    // snapshot: the OPTIK contract reports the validation
                    // failure and lets the caller redo its work under the
                    // lock it now holds.
                    optik_probe::count(optik_probe::Event::ValidationFail);
                }
                return cur == target;
            }
        }
    }

    #[inline]
    fn lock(&self) -> Version {
        loop {
            let mut cur = self.word.load(Ordering::Relaxed);
            while cur & LOCKED_BIT != 0 {
                synchro::relax();
                cur = self.word.load(Ordering::Relaxed);
            }
            if self
                .word
                .compare_exchange(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                crate::traits::acquired_fence();
                optik_probe::lock_acquired();
                return cur;
            }
        }
    }

    #[inline]
    fn unlock(&self) {
        // Holder-only: value is odd; +1 makes it the next even version.
        self.word.fetch_add(1, Ordering::Release);
        optik_probe::lock_released();
    }

    #[inline]
    fn revert(&self) {
        // Holder-only: value is odd; −1 restores the pre-acquisition version.
        self.word.fetch_sub(1, Ordering::Release);
        optik_probe::lock_released();
    }

    #[inline]
    fn is_locked_version(v: Version) -> bool {
        v & LOCKED_BIT != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::optik_conformance_tests;

    optik_conformance_tests!(OptikVersioned);

    #[test]
    fn odd_versions_are_locked() {
        assert!(!OptikVersioned::is_locked_version(0));
        assert!(OptikVersioned::is_locked_version(1));
        assert!(!OptikVersioned::is_locked_version(2));
        assert!(OptikVersioned::is_locked_version(u64::MAX));
    }

    #[test]
    fn with_version_clears_lock_bit() {
        let l = OptikVersioned::with_version(7);
        assert_eq!(l.get_version(), 6);
        assert!(!l.is_locked());
    }

    #[test]
    fn version_advances_by_two_per_critical_section() {
        let l = OptikVersioned::new();
        let v0 = l.get_version();
        assert!(l.try_lock_version(v0));
        l.unlock();
        assert_eq!(l.get_version(), v0 + 2);
    }

    #[test]
    fn counting_skips_cas_on_mismatch() {
        let l = OptikVersioned::new();
        let stale = l.get_version();
        assert!(l.try_lock_version(stale));
        l.unlock();
        let (ok, cas) = l.try_lock_version_counting(stale);
        assert!(!ok);
        assert_eq!(cas, 0, "pre-check must avoid the CAS");
        let (ok, cas) = l.try_lock_version_counting(l.get_version());
        assert!(ok);
        assert_eq!(cas, 1);
        l.unlock();
    }

    #[test]
    fn wraparound_near_max_still_works() {
        let l = OptikVersioned::with_version(u64::MAX - 1); // even
        let v = l.get_version();
        assert!(l.try_lock_version(v));
        l.unlock(); // wraps to 0
        assert_eq!(l.get_version(), 0);
        assert!(!l.is_locked());
    }
}
