//! Substrate synchronization primitives for the OPTIK reproduction.
//!
//! This crate provides everything below the OPTIK lock layer:
//!
//! - classic spinlock algorithms used as baselines in the paper
//!   ([`TasLock`], [`TtasLock`], [`TicketLock`], [`McsLock`], [`ClhLock`]),
//! - the exponential [`Backoff`] scheme the paper applies uniformly to all
//!   data structures ("exponentially increasing backoff times with up to 16k
//!   cycles maximum backoff", §5),
//! - a cheap per-core [`cycles::now`] timestamp counter used for the latency
//!   distributions of Figures 7 and 12,
//! - [`CachePadded`] re-exported from `crossbeam-utils` so every crate pads
//!   contended words the same way,
//! - the [`shim`] atomic wrappers that make the OPTIK validation points
//!   schedulable by the deterministic explorer (`optik-explore`) under
//!   `--cfg optik_explore`, at zero cost in normal builds.
//!
//! The locks here implement the plain mutual-exclusion interface
//! ([`RawLock`]); the extended OPTIK interface lives in the `optik` crate.

#![warn(missing_docs)]

pub mod backoff;
pub mod clh;
pub mod combine;
pub mod cycles;
pub mod lock_api;
pub mod mcs;
pub mod prefetch;
pub mod shim;
pub mod stress;
pub mod tas;
pub mod ticket;
pub mod ttas;

pub use backoff::{relax, Backoff};
pub use clh::ClhLock;
pub use combine::PubList;
pub use crossbeam_utils::CachePadded;
pub use lock_api::{Lock, LockGuard, RawLock};
pub use mcs::{McsLock, McsNode};
pub use tas::TasLock;
pub use ticket::TicketLock;
pub use ttas::TtasLock;
