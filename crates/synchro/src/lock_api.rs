//! The plain mutual-exclusion interface shared by the substrate spinlocks,
//! and a safe RAII wrapper for protecting data with any of them.

use core::cell::UnsafeCell;
use core::fmt;
use core::ops::{Deref, DerefMut};

/// A raw spinlock: mutual exclusion without an associated datum.
///
/// Implementations must guarantee that between a successful [`RawLock::lock`]
/// (or [`RawLock::try_lock`] returning `true`) and the matching
/// [`RawLock::unlock`], no other thread can complete an acquisition; the
/// acquisition must have *acquire* ordering and the release *release*
/// ordering, so that the critical section is properly fenced.
///
/// `unlock` is a safe function but is only meaningful when the caller holds
/// the lock; calling it otherwise breaks mutual exclusion for users of the
/// same lock (it cannot cause memory unsafety by itself because the raw lock
/// protects no data). The safe, misuse-proof interface is [`Lock`].
pub trait RawLock: Default + Send + Sync {
    /// Acquires the lock, spinning until available.
    fn lock(&self);
    /// Attempts to acquire the lock once; returns whether it was acquired.
    fn try_lock(&self) -> bool;
    /// Releases the lock. Caller must hold it.
    fn unlock(&self);
    /// Whether the lock is currently held by some thread.
    fn is_locked(&self) -> bool;
}

/// A value protected by a raw spinlock, with RAII guards.
///
/// # Examples
///
/// ```
/// use synchro::{Lock, TtasLock};
///
/// let counter: Lock<u64, TtasLock> = Lock::new(0);
/// {
///     let mut g = counter.lock();
///     *g += 1;
/// }
/// assert_eq!(*counter.lock(), 1);
/// ```
pub struct Lock<T, R: RawLock> {
    raw: R,
    data: UnsafeCell<T>,
}

// SAFETY: the raw lock serializes all access to `data`.
unsafe impl<T: Send, R: RawLock> Send for Lock<T, R> {}
// SAFETY: guards hand out &mut T only under mutual exclusion.
unsafe impl<T: Send, R: RawLock> Sync for Lock<T, R> {}

impl<T, R: RawLock> Lock<T, R> {
    /// Wraps `value` with a default-constructed raw lock.
    pub fn new(value: T) -> Self {
        Self {
            raw: R::default(),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, blocking (spinning) until available.
    pub fn lock(&self) -> LockGuard<'_, T, R> {
        self.raw.lock();
        optik_probe::count(optik_probe::Event::SpinAcquire);
        LockGuard {
            lock: self,
            acquired_at: optik_probe::now(),
        }
    }

    /// Attempts to acquire the lock without spinning.
    pub fn try_lock(&self) -> Option<LockGuard<'_, T, R>> {
        if self.raw.try_lock() {
            optik_probe::count(optik_probe::Event::SpinAcquire);
            Some(LockGuard {
                lock: self,
                acquired_at: optik_probe::now(),
            })
        } else {
            None
        }
    }

    /// Whether the lock is currently held.
    pub fn is_locked(&self) -> bool {
        self.raw.is_locked()
    }

    /// Returns a mutable reference without locking; safe because `&mut self`
    /// proves unique access.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: fmt::Debug, R: RawLock> fmt::Debug for Lock<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.try_lock() {
            f.debug_struct("Lock").field("data", &*g).finish()
        } else {
            f.debug_struct("Lock").field("data", &"<locked>").finish()
        }
    }
}

impl<T: Default, R: RawLock> Default for Lock<T, R> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`Lock`]; releases on drop.
pub struct LockGuard<'a, T, R: RawLock> {
    lock: &'a Lock<T, R>,
    /// Probe timestamp at acquisition (the constant 0 when the probe
    /// feature is off, where the hold-time record below is also a no-op).
    acquired_at: u64,
}

impl<T, R: RawLock> Deref for LockGuard<'_, T, R> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock, so access is exclusive.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T, R: RawLock> DerefMut for LockGuard<'_, T, R> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the lock, so access is exclusive.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T, R: RawLock> Drop for LockGuard<'_, T, R> {
    fn drop(&mut self) {
        self.lock.raw.unlock();
        optik_probe::record(
            optik_probe::HistKind::LockHold,
            optik_probe::elapsed(self.acquired_at, optik_probe::now()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TasLock, TicketLock, TtasLock};
    use std::sync::Arc;
    use std::thread;

    fn hammer<R: RawLock + 'static>() {
        const THREADS: usize = 8;
        let iters = crate::stress::ops(10_000);
        let lock: Arc<Lock<u64, R>> = Arc::new(Lock::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            handles.push(thread::spawn(move || {
                for _ in 0..iters {
                    *lock.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), THREADS as u64 * iters);
    }

    #[test]
    fn tas_counter_is_exact() {
        hammer::<TasLock>();
    }

    #[test]
    fn ttas_counter_is_exact() {
        hammer::<TtasLock>();
    }

    #[test]
    fn ticket_counter_is_exact() {
        hammer::<TicketLock>();
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock: Lock<i32, TtasLock> = Lock::new(7);
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        assert!(lock.is_locked());
        drop(g);
        assert!(!lock.is_locked());
        assert_eq!(*lock.try_lock().unwrap(), 7);
    }

    #[test]
    fn get_mut_and_into_inner() {
        let mut lock: Lock<i32, TasLock> = Lock::new(1);
        *lock.get_mut() = 5;
        assert_eq!(lock.into_inner(), 5);
    }

    #[test]
    fn debug_formats_both_states() {
        let lock: Lock<i32, TtasLock> = Lock::new(3);
        assert!(format!("{lock:?}").contains('3'));
        let g = lock.lock();
        assert!(format!("{lock:?}").contains("locked"));
        drop(g);
    }
}
