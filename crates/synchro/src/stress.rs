//! Scaling knobs for the multi-threaded stress tests.
//!
//! The workspace's stress tests were written for an 8-core box; on a
//! 1-core CI runner, 8 threads hammering spinlocks through the scheduler
//! made `cargo test -q` take ~7 minutes. Iteration counts now scale with
//! [`std::thread::available_parallelism`], overridable with the
//! `STRESS_SCALE` environment variable:
//!
//! - `STRESS_SCALE=1` forces full (paper/8-core) strength,
//! - `STRESS_SCALE=0.1` runs a 10% smoke pass (values above 1 are
//!   honored too, for soak runs),
//! - unset: `cores / 8`, clamped to `[0.125, 1.0]` — auto-scaling only
//!   ever *shrinks* the tuned counts, so the default tier is never
//!   slower (or stronger) than the `--ignored` full-strength tier.
//!
//! The `--ignored` test tier always runs at the full 8-core-tuned
//! strength regardless of core count (see the `*_full` tests in
//! `tests/`).
//!
//! Reproducibility: stress and property tiers derive their RNG streams
//! from [`seed`]. By default each process draws a fresh seed (so repeated
//! CI runs explore different schedules); setting `STRESS_SEED=<u64>`
//! pins it, and every failure message is expected to print the active
//! seed so a red run can be replayed with
//! `STRESS_SEED=<printed value> cargo test ...`.

/// The baseline core count the stress constants were tuned for.
pub const BASELINE_CORES: usize = 8;

/// Current scale factor (see module docs).
pub fn scale() -> f64 {
    if let Ok(s) = std::env::var("STRESS_SCALE") {
        if let Ok(f) = s.parse::<f64>() {
            if f.is_finite() && f > 0.0 {
                return f;
            }
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(BASELINE_CORES);
    (cores as f64 / BASELINE_CORES as f64).clamp(0.125, 1.0)
}

/// Scales an iteration count tuned for an 8-core box, with a floor of 64
/// so even the smallest run still exercises cross-thread interleavings.
/// The cap (2× the base) only matters under an explicit `STRESS_SCALE`
/// above 1; the automatic scale never exceeds 1.
pub fn ops(base: u64) -> u64 {
    ((base as f64 * scale()).round() as u64).clamp(64.min(base), base.max(1) * 2)
}

/// The process-wide base seed for stress/property RNG streams.
///
/// Reads `STRESS_SEED` (a decimal or `0x`-prefixed hex u64) once per
/// process; when unset or unparsable, derives a seed from the system
/// clock and process id so distinct runs explore distinct schedules.
/// Tests must fold this into their per-thread streams (e.g.
/// `seed().wrapping_add(thread_id)`) and print it on failure — that line
/// is what makes a one-in-a-thousand stress failure reproducible.
pub fn seed() -> u64 {
    use std::sync::OnceLock;
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        if let Ok(s) = std::env::var("STRESS_SEED") {
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                s.parse::<u64>().ok()
            };
            if let Some(v) = parsed {
                return v;
            }
            eprintln!("STRESS_SEED={s:?} is not a u64; drawing a fresh seed");
        }
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xB5AD4ECEDA1CE2A9);
        // SplitMix64 finalizer: spread clock/pid entropy over all 64 bits.
        let mut z = now ^ (u64::from(std::process::id()) << 32);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_scale_is_bounded_and_floored() {
        // Whatever the box, the result stays in the documented band.
        let n = ops(16_000);
        assert!(n >= 64, "floor: {n}");
        assert!(n <= 32_000, "cap: {n}");
        assert_eq!(ops(0), 0);
        // Tiny bases are passed through rather than inflated to the floor.
        assert!(ops(10) <= 20);
    }

    #[test]
    fn auto_scale_never_exceeds_full_strength() {
        // Only an explicit STRESS_SCALE may exceed 1.0; the
        // parallelism-derived default must not (else the default tier
        // would outweigh the `--ignored` "full strength" tier). Skip when
        // the environment forces a scale.
        if std::env::var("STRESS_SCALE").is_err() {
            assert!(scale() <= 1.0, "{}", scale());
        }
    }

    #[test]
    fn scale_is_positive_and_finite() {
        let s = scale();
        assert!(s.is_finite() && s > 0.0, "{s}");
    }

    #[test]
    fn seed_is_stable_within_a_process() {
        // Whatever the source (env pin or fresh draw), the base seed must
        // not drift between calls, or per-thread streams derived at
        // different times would disagree with the printed value.
        assert_eq!(seed(), seed());
        if let Ok(s) = std::env::var("STRESS_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                assert_eq!(seed(), v);
            }
        }
    }
}
