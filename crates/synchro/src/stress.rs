//! Scaling knobs for the multi-threaded stress tests.
//!
//! The workspace's stress tests were written for an 8-core box; on a
//! 1-core CI runner, 8 threads hammering spinlocks through the scheduler
//! made `cargo test -q` take ~7 minutes. Iteration counts now scale with
//! [`std::thread::available_parallelism`], overridable with the
//! `STRESS_SCALE` environment variable:
//!
//! - `STRESS_SCALE=1` forces full (paper/8-core) strength,
//! - `STRESS_SCALE=0.1` runs a 10% smoke pass (values above 1 are
//!   honored too, for soak runs),
//! - unset: `cores / 8`, clamped to `[0.125, 1.0]` — auto-scaling only
//!   ever *shrinks* the tuned counts, so the default tier is never
//!   slower (or stronger) than the `--ignored` full-strength tier.
//!
//! The `--ignored` test tier always runs at the full 8-core-tuned
//! strength regardless of core count (see the `*_full` tests in
//! `tests/`).

/// The baseline core count the stress constants were tuned for.
pub const BASELINE_CORES: usize = 8;

/// Current scale factor (see module docs).
pub fn scale() -> f64 {
    if let Ok(s) = std::env::var("STRESS_SCALE") {
        if let Ok(f) = s.parse::<f64>() {
            if f.is_finite() && f > 0.0 {
                return f;
            }
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(BASELINE_CORES);
    (cores as f64 / BASELINE_CORES as f64).clamp(0.125, 1.0)
}

/// Scales an iteration count tuned for an 8-core box, with a floor of 64
/// so even the smallest run still exercises cross-thread interleavings.
/// The cap (2× the base) only matters under an explicit `STRESS_SCALE`
/// above 1; the automatic scale never exceeds 1.
pub fn ops(base: u64) -> u64 {
    ((base as f64 * scale()).round() as u64).clamp(64.min(base), base.max(1) * 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_scale_is_bounded_and_floored() {
        // Whatever the box, the result stays in the documented band.
        let n = ops(16_000);
        assert!(n >= 64, "floor: {n}");
        assert!(n <= 32_000, "cap: {n}");
        assert_eq!(ops(0), 0);
        // Tiny bases are passed through rather than inflated to the floor.
        assert!(ops(10) <= 20);
    }

    #[test]
    fn auto_scale_never_exceeds_full_strength() {
        // Only an explicit STRESS_SCALE may exceed 1.0; the
        // parallelism-derived default must not (else the default tier
        // would outweigh the `--ignored` "full strength" tier). Skip when
        // the environment forces a scale.
        if std::env::var("STRESS_SCALE").is_err() {
            assert!(scale() <= 1.0, "{}", scale());
        }
    }

    #[test]
    fn scale_is_positive_and_finite() {
        let s = scale();
        assert!(s.is_finite() && s > 0.0, "{s}");
    }
}
