//! Ticket spinlock.
//!
//! The lock the OPTIK name comes from ("optimistic concurrency with ticket
//! locks", paper footnote 1). Two `u32` counters packed in one `u64`:
//! `ticket` (next ticket to hand out) and `current` (ticket being served).
//! Acquire = fetch-and-increment `ticket`, then wait until `current`
//! catches up. Release = increment `current`.
//!
//! Ticket locks are fair (FIFO) and expose the queue length
//! (`ticket - current`), which the OPTIK crate's ticket implementation
//! exploits for `num_queued` and proportional backoff.

use core::sync::atomic::{AtomicU64, Ordering};

use crate::lock_api::RawLock;

const TICKET_SHIFT: u32 = 32;
const ONE_TICKET: u64 = 1 << TICKET_SHIFT;

#[inline]
fn ticket_of(word: u64) -> u32 {
    (word >> TICKET_SHIFT) as u32
}

#[inline]
fn current_of(word: u64) -> u32 {
    word as u32
}

/// A fair FIFO ticket spinlock.
#[derive(Debug, Default)]
pub struct TicketLock {
    // low 32 bits: current; high 32 bits: ticket.
    word: AtomicU64,
}

impl TicketLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        Self {
            word: AtomicU64::new(0),
        }
    }

    /// Number of threads queued behind the current holder (0 if free).
    pub fn num_queued(&self) -> u32 {
        let w = self.word.load(Ordering::Relaxed);
        ticket_of(w).wrapping_sub(current_of(w))
    }
}

impl RawLock for TicketLock {
    #[inline]
    fn lock(&self) {
        // Grab a ticket.
        let w = self.word.fetch_add(ONE_TICKET, Ordering::Relaxed);
        let my_ticket = ticket_of(w);
        if current_of(w) == my_ticket {
            // Uncontended fast path; the fetch_add was Relaxed, so fence the
            // critical section entry.
            core::sync::atomic::fence(Ordering::Acquire);
            return;
        }
        // Wait for our turn.
        loop {
            let w = self.word.load(Ordering::Acquire);
            if current_of(w) == my_ticket {
                return;
            }
            crate::relax();
        }
    }

    #[inline]
    fn try_lock(&self) -> bool {
        let w = self.word.load(Ordering::Relaxed);
        if ticket_of(w) != current_of(w) {
            return false; // held or queued
        }
        let next = w.wrapping_add(ONE_TICKET);
        self.word
            .compare_exchange(w, next, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    #[inline]
    fn unlock(&self) {
        // Only the holder increments `current`. A plain fetch_add would
        // carry into the ticket half when current wraps at u32::MAX, so bump
        // within the low 32 bits via CAS; only arriving waiters (ticket
        // half) can race with it.
        let mut w = self.word.load(Ordering::Relaxed);
        loop {
            let cur = current_of(w).wrapping_add(1);
            let new = (u64::from(ticket_of(w)) << TICKET_SHIFT) | u64::from(cur);
            match self
                .word
                .compare_exchange_weak(w, new, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => w = observed,
            }
        }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        let w = self.word.load(Ordering::Relaxed);
        ticket_of(w) != current_of(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_lock_unlock() {
        let l = TicketLock::new();
        assert!(!l.is_locked());
        assert_eq!(l.num_queued(), 0);
        l.lock();
        assert!(l.is_locked());
        assert_eq!(l.num_queued(), 1);
        assert!(!l.try_lock());
        l.unlock();
        assert!(!l.is_locked());
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn num_queued_counts_waiters() {
        let l = Arc::new(TicketLock::new());
        l.lock();
        let waiter = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                l.lock();
                l.unlock();
            })
        };
        // Wait until the spawned thread has taken a ticket.
        while l.num_queued() < 2 {
            crate::relax();
        }
        assert_eq!(l.num_queued(), 2); // holder + one waiter
        l.unlock();
        waiter.join().unwrap();
        assert_eq!(l.num_queued(), 0);
    }

    #[test]
    fn fifo_ordering() {
        // Threads record their acquisition order; with a ticket lock the
        // ticket-grab order (serialized via the visible queue length) must
        // match the order critical sections are granted.
        let l = Arc::new(TicketLock::new());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));

        l.lock(); // hold so all children queue up; num_queued() == 1
        let mut handles = Vec::new();
        for id in 0..4u32 {
            let l = Arc::clone(&l);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                // Thread `id` takes its ticket only once `id` earlier tickets
                // (plus the main holder) are visible, serializing grabs.
                while l.num_queued() != id + 1 {
                    crate::relax();
                }
                l.lock();
                order.lock().unwrap().push(id);
                l.unlock();
            }));
        }
        // Wait for everyone to be queued, then start the convoy.
        while l.num_queued() < 5 {
            crate::relax();
        }
        l.unlock();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let iters = crate::stress::ops(10_000);
        let l = Arc::new(TicketLock::new());
        let count = Arc::new(core::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = Arc::clone(&l);
            let count = Arc::clone(&count);
            handles.push(std::thread::spawn(move || {
                for _ in 0..iters {
                    l.lock();
                    let v = count.load(Ordering::Relaxed);
                    count.store(v + 1, Ordering::Relaxed);
                    l.unlock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(count.load(Ordering::Relaxed), 8 * iters);
    }
}
