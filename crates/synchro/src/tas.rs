//! Test-and-set spinlock.
//!
//! The simplest possible spinlock: a single byte, acquired with an atomic
//! swap. Every acquisition attempt writes the cache line, so under
//! contention the line ping-pongs between cores — the paper uses this as the
//! worst-case baseline ("if we use a test-and-set lock instead of a TTAS,
//! the number of CAS per validation explodes", §3.2 footnote).

use core::sync::atomic::{AtomicBool, Ordering};

use crate::lock_api::RawLock;

/// A test-and-set spinlock.
#[derive(Debug, Default)]
pub struct TasLock {
    locked: AtomicBool,
}

impl TasLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
        }
    }
}

impl RawLock for TasLock {
    #[inline]
    fn lock(&self) {
        // Swap unconditionally: the "test-and-set" in the name.
        while self.locked.swap(true, Ordering::Acquire) {
            crate::relax();
        }
    }

    #[inline]
    fn try_lock(&self) -> bool {
        !self.locked.swap(true, Ordering::Acquire)
    }

    #[inline]
    fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_lock_unlock() {
        let l = TasLock::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        assert!(!l.try_lock());
        l.unlock();
        assert!(!l.is_locked());
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        use std::sync::atomic::AtomicU32;
        use std::sync::Arc;

        let lock = Arc::new(TasLock::new());
        let inside = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let inside = Arc::clone(&inside);
            handles.push(std::thread::spawn(move || {
                for _ in 0..crate::stress::ops(5_000) {
                    lock.lock();
                    let was = inside.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(was, 0, "two threads inside the TAS critical section");
                    inside.fetch_sub(1, Ordering::SeqCst);
                    lock.unlock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
