//! CLH queue spinlock (Craig, Landin & Hagersten).
//!
//! Like MCS, waiters queue; unlike MCS each waiter spins on its
//! *predecessor's* node, so the queue is implicit (a single tail pointer and
//! per-thread node recycling). Provided as a second queue-lock baseline; the
//! paper's experiments use MCS, but CLH is the standard alternative and
//! useful for the ablation benches.
//!
//! Nodes are heap-allocated and recycled through the lock itself (the
//! classic CLH trick: on release you adopt your predecessor's node), so the
//! public API needs no caller-managed nodes.

use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use crossbeam_utils::CachePadded;

struct ClhQnode {
    locked: CachePadded<AtomicBool>,
}

/// A CLH queue spinlock with an RAII guard.
pub struct ClhLock {
    tail: AtomicPtr<ClhQnode>,
}

// SAFETY: all shared state is atomics; node ownership is handed off through
// the tail pointer protocol.
unsafe impl Send for ClhLock {}
unsafe impl Sync for ClhLock {}

impl ClhLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        let sentinel = Box::into_raw(Box::new(ClhQnode {
            locked: CachePadded::new(AtomicBool::new(false)),
        }));
        Self {
            tail: AtomicPtr::new(sentinel),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> ClhGuard<'_> {
        let node = Box::into_raw(Box::new(ClhQnode {
            locked: CachePadded::new(AtomicBool::new(true)),
        }));
        let pred = self.tail.swap(node, Ordering::AcqRel);
        // SAFETY: `pred` is the previous tail; its owner will not free it —
        // ownership transfers to us (we free it on unlock).
        unsafe {
            while (*pred).locked.load(Ordering::Acquire) {
                crate::relax();
            }
        }
        ClhGuard {
            lock: self,
            node,
            pred,
        }
    }

    /// Whether some thread currently holds (or queues for) the lock.
    pub fn is_locked(&self) -> bool {
        let tail = self.tail.load(Ordering::Acquire);
        // SAFETY: tail is always a live node (sentinel or an acquirer's).
        unsafe { (*tail).locked.load(Ordering::Relaxed) }
    }

    /// Runs `f` inside the critical section.
    pub fn with<T>(&self, f: impl FnOnce() -> T) -> T {
        let _g = self.lock();
        f()
    }
}

impl Default for ClhLock {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ClhLock {
    fn drop(&mut self) {
        // The final tail node is owned by the lock once all guards are gone.
        let tail = *self.tail.get_mut();
        // SAFETY: no guards outlive the lock (they borrow it), so the tail
        // node has no other owner.
        unsafe { drop(Box::from_raw(tail)) };
    }
}

/// RAII guard for [`ClhLock`]; releases on drop.
pub struct ClhGuard<'a> {
    lock: &'a ClhLock,
    node: *mut ClhQnode,
    pred: *mut ClhQnode,
}

impl Drop for ClhGuard<'_> {
    fn drop(&mut self) {
        let _ = self.lock;
        // SAFETY: we own `pred` (adopted at acquisition) and `node` is ours;
        // releasing publishes `node` to our successor, `pred` is retired.
        unsafe {
            (*self.node).locked.store(false, Ordering::Release);
            drop(Box::from_raw(self.pred));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_thread_cycle() {
        let lock = ClhLock::new();
        assert!(!lock.is_locked());
        {
            let _g = lock.lock();
            assert!(lock.is_locked());
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn exclusive_counter() {
        let iters = crate::stress::ops(10_000);
        let lock = Arc::new(ClhLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..iters {
                    lock.with(|| {
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8 * iters);
    }

    #[test]
    fn no_leak_on_repeated_use() {
        // Smoke test that node recycling keeps working across many cycles.
        let lock = ClhLock::new();
        for _ in 0..crate::stress::ops(100_000) {
            let _g = lock.lock();
        }
        assert!(!lock.is_locked());
    }
}
