//! Flat combining: a publication list that turns a contended lock into
//! a batching opportunity.
//!
//! Under hot-key skew one OPTIK shard's lock word serializes every
//! writer, and the paper's validate-and-retry discipline degenerates
//! into cache-line ping-pong: each writer drags the lock line across the
//! interconnect to apply one operation. Flat combining (Hendler, Incze,
//! Shavit & Tzafrir, SPAA '10) inverts the protocol: a contended writer
//! *publishes* its request into a cache-padded per-thread slot and one
//! thread — whichever wins the lock — becomes the **combiner**, draining
//! every published request in a single critical section. The lock line
//! moves once per batch instead of once per op, and the combiner walks
//! slots that stay resident in its cache.
//!
//! [`PubList`] is the workspace's primitive: per-thread request slots
//! keyed by the process-wide `optik_probe` thread-index registry (the
//! same keying as the `reclaim` magazines and the probe slabs), linked
//! into a Treiber-style pending chain on publish. It is deliberately
//! lock-agnostic — [`PubList::drain`] is memory-safe on its own (the
//! head swap partitions the chain, so each published slot is answered
//! exactly once) and callers decide which mutual exclusion makes a drain
//! a *sensible* critical section:
//!
//! - [`PubList::combine_with`] mounts it over any substrate
//!   [`RawLock`] (the `lock_api` integration);
//! - the kv store mounts it over its per-shard OPTIK version locks
//!   directly, so a whole batch costs **one** version bump and
//!   validated readers observe it as a single atomic step.
//!
//! Each slot's `state` word is a [`shim::AtomicU64`]: pass-through in
//! normal builds, a scheduler yield point under `--cfg optik_explore`,
//! so the publish / combine / timeout races are enumerable by the
//! deterministic explorer (`explore_combine.rs`).

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicUsize, Ordering};

use crate::lock_api::RawLock;
use crate::shim;
use crate::CachePadded;

/// Slot is idle and owned by its thread; not linked anywhere.
const EMPTY: u64 = 0;
/// Slot carries a request and sits in the pending chain; the publisher
/// spins (or tries to become the combiner) until it flips to [`DONE`].
const PUBLISHED: u64 = 1;
/// The combiner wrote the response; ownership is back with the
/// publisher, which harvests it via [`PubList::poll`].
const DONE: u64 = 2;

/// One per-thread request slot. Cache-padded by the containing list so
/// a publisher spinning on its own `state` word never shares a line
/// with a neighbor's.
struct Slot<O, R> {
    /// The hand-off protocol word (`EMPTY → PUBLISHED → DONE → EMPTY`).
    /// Shim-typed: each transition is an explorer yield point.
    state: shim::AtomicU64,
    /// Link in the pending chain (slot index + 1, `0` = end). Only
    /// meaningful while `state == PUBLISHED`; the combiner reads it
    /// *before* flipping to `DONE`, because a reused slot overwrites it.
    next: AtomicUsize,
    /// The request. Written by the publisher before the `PUBLISHED`
    /// release store; taken by the combiner after the chain hand-off.
    op: UnsafeCell<Option<O>>,
    /// The response. Written by the combiner before the `DONE` release
    /// store; taken by the publisher after observing `DONE`.
    resp: UnsafeCell<Option<R>>,
}

impl<O, R> Slot<O, R> {
    fn new() -> Self {
        Self {
            state: shim::AtomicU64::new(EMPTY),
            next: AtomicUsize::new(0),
            op: UnsafeCell::new(None),
            resp: UnsafeCell::new(None),
        }
    }
}

/// A Hendler-style publication list: cache-padded per-thread request
/// slots plus a Treiber-style chain of the currently published ones.
///
/// The protocol (all methods are non-blocking; *waiting* is the
/// caller's loop):
///
/// 1. a contended writer calls [`PubList::publish`] and then polls
///    [`PubList::poll`] for its response;
/// 2. any thread that acquires the associated lock calls
///    [`PubList::drain`] (directly, or via [`PubList::combine_with`]),
///    answering every published request in one critical section —
///    including, possibly, its own;
/// 3. a publisher that keeps failing to see `DONE` *is* the timeout
///    path: it competes for the lock like any writer and, on winning,
///    drains the list itself (its own op included), so no publication
///    can be stranded.
///
/// Each publication is answered exactly once: the head swap in `drain`
/// atomically partitions the chain among combiners, and a slot is only
/// ever re-linked by its owning thread after harvesting the previous
/// response.
pub struct PubList<O, R> {
    /// Head of the pending chain (slot index + 1, `0` = empty). On its
    /// own line: publishers CAS it on the slow path only, and the
    /// combiner's swap must not invalidate anyone's slot line.
    head: CachePadded<AtomicUsize>,
    /// One slot per registry index ([`optik_probe::MAX_THREADS`]).
    slots: Box<[CachePadded<Slot<O, R>>]>,
}

// SAFETY: the `op`/`resp` cells are handed between the publisher and
// the combiner through the `state` protocol — every hand-off is a
// Release store observed by an Acquire load (or rides the pending
// chain's release sequence), and each side touches the cells only in
// the states it owns (see the field docs). `head`/`next`/`state` are
// atomics.
unsafe impl<O: Send, R: Send> Sync for PubList<O, R> {}

impl<O, R> Default for PubList<O, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O, R> PubList<O, R> {
    /// Creates an empty publication list with one slot per possible
    /// live thread (the `optik_probe` registry bound).
    pub fn new() -> Self {
        Self {
            head: CachePadded::new(AtomicUsize::new(0)),
            slots: (0..optik_probe::MAX_THREADS)
                .map(|_| CachePadded::new(Slot::new()))
                .collect(),
        }
    }

    /// Publishes `op` into the calling thread's slot and links it into
    /// the pending chain. Returns the slot index to [`PubList::poll`]
    /// with, or `None` when the thread has no registry index (TLS
    /// teardown) — the caller falls back to plain locking.
    ///
    /// One publication per thread at a time: callers must harvest the
    /// response before publishing again (the write paths are
    /// synchronous, so this holds by construction).
    pub fn publish(&self, op: O) -> Option<usize> {
        let idx = optik_probe::thread_index()?;
        let slot = &self.slots[idx];
        debug_assert_eq!(
            slot.state.load(Ordering::Relaxed),
            EMPTY,
            "one publication per thread at a time"
        );
        // SAFETY: an EMPTY slot is unlinked (no combiner can reach it)
        // and this thread is its exclusive owner.
        unsafe { *slot.op.get() = Some(op) };
        slot.state.store(PUBLISHED, Ordering::Release);
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            slot.next.store(head, Ordering::Relaxed);
            // Release: the chain hand-off publishes `op`, `state`, and
            // `next` to the combiner's Acquire swap (RMWs extend the
            // release sequence, so deeper links stay visible too).
            match self
                .head
                .compare_exchange(head, idx + 1, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return Some(idx),
                Err(h) => head = h,
            }
        }
    }

    /// Harvests the response for the publication at `idx`, or `None`
    /// while it is still pending. On `Some`, slot ownership is back
    /// with the calling thread (it may publish again).
    pub fn poll(&self, idx: usize) -> Option<R> {
        let slot = &self.slots[idx];
        // Acquire pairs with the combiner's DONE release store: the
        // response write below is visible.
        if slot.state.load(Ordering::Acquire) != DONE {
            return None;
        }
        // SAFETY: DONE means the combiner finished with the slot and it
        // is off every chain; this thread is its exclusive owner again.
        let resp = unsafe { (*slot.resp.get()).take() }.expect("DONE slot carries a response");
        slot.state.store(EMPTY, Ordering::Relaxed);
        Some(resp)
    }

    /// Whether any publication is pending (racy hint; cheap).
    pub fn pending(&self) -> bool {
        self.head.load(Ordering::Relaxed) != 0
    }

    /// The combiner role: detaches the whole pending chain and answers
    /// every publication in it via `apply(slot_index, op)`, returning
    /// how many were applied.
    ///
    /// Memory-safe without external locking (the head swap atomically
    /// partitions the chain, so each published slot is visited by
    /// exactly one drain), but callers wanting the batch to be *one*
    /// critical section — the whole point — hold the associated lock
    /// across the call, as [`PubList::combine_with`] and the kv store's
    /// shard mount do.
    pub fn drain(&self, mut apply: impl FnMut(usize, O) -> R) -> u64 {
        // Acquire pairs with the publishers' Release CASes: every slot
        // in the detached chain is fully published.
        let mut cur = self.head.swap(0, Ordering::Acquire);
        let mut n = 0u64;
        while cur != 0 {
            let idx = cur - 1;
            let slot = &self.slots[idx];
            debug_assert_eq!(
                slot.state.load(Ordering::Acquire),
                PUBLISHED,
                "linked slots are published until their drain answers them"
            );
            // Read the link BEFORE flipping to DONE: once answered, the
            // publisher owns the slot again and a republish overwrites
            // `next` while we still need it.
            let next = slot.next.load(Ordering::Relaxed);
            // SAFETY: a linked slot is PUBLISHED — its publisher wrote
            // `op` before the Release hand-off our Acquire swap
            // synchronized with, and now only polls `state`; the swap
            // gave this drain exclusive ownership of the chain.
            let op = unsafe { (*slot.op.get()).take() }.expect("linked slot carries an op");
            let resp = apply(idx, op);
            // SAFETY: as above; the publisher reads `resp` only after
            // the DONE release store below.
            unsafe { *slot.resp.get() = Some(resp) };
            slot.state.store(DONE, Ordering::Release);
            n += 1;
            cur = next;
        }
        n
    }

    /// The `lock_api` mount: attempts `lock` once and, on success,
    /// drains under it before releasing. Returns how many publications
    /// were answered, or `None` when the lock was busy (another thread
    /// is combining — keep polling). See [`PubList::drain`] for the kv
    /// store's OPTIK-version-lock variant of the same pattern.
    pub fn combine_with<L: RawLock>(
        &self,
        lock: &L,
        apply: impl FnMut(usize, O) -> R,
    ) -> Option<u64> {
        if !lock.try_lock() {
            return None;
        }
        let n = self.drain(apply);
        lock.unlock();
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TasLock;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;
    use std::sync::Arc;

    #[test]
    fn publish_drain_poll_roundtrip() {
        let list: PubList<u64, u64> = PubList::new();
        assert!(!list.pending());
        let idx = list.publish(41).expect("live thread has an index");
        assert!(list.pending());
        assert_eq!(list.poll(idx), None, "pending publication has no response");
        let n = list.drain(|slot, op| {
            assert_eq!(slot, idx, "self-drain answers our own slot");
            op + 1
        });
        assert_eq!(n, 1);
        assert!(!list.pending());
        assert_eq!(list.poll(idx), Some(42));
        assert_eq!(list.poll(idx), None, "responses are harvested once");
    }

    #[test]
    fn slot_reuse_after_harvest() {
        let list: PubList<u64, u64> = PubList::new();
        for round in 0..3u64 {
            let idx = list.publish(round).unwrap();
            assert_eq!(list.drain(|_, op| op * 10), 1);
            assert_eq!(list.poll(idx), Some(round * 10));
        }
    }

    #[test]
    fn combine_with_skips_a_held_lock() {
        let list: PubList<u64, u64> = PubList::new();
        let lock = TasLock::default();
        let idx = list.publish(7).unwrap();
        lock.lock();
        assert_eq!(
            list.combine_with(&lock, |_, op| op),
            None,
            "busy lock means someone else is the combiner"
        );
        lock.unlock();
        assert_eq!(list.combine_with(&lock, |_, op| op), Some(1));
        assert_eq!(list.poll(idx), Some(7));
        assert_eq!(list.combine_with(&lock, |_, op| op), Some(0), "empty drain");
    }

    /// The full writer protocol under real contention: every published
    /// increment is applied exactly once, by whichever thread wins the
    /// combiner role, and every publisher gets a response.
    #[test]
    fn combined_increments_are_exact() {
        const THREADS: u64 = 4;
        let iters = crate::stress::ops(20_000);
        let list: Arc<PubList<u64, u64>> = Arc::new(PubList::new());
        let lock = Arc::new(TasLock::default());
        let total = Arc::new(StdAtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let list = Arc::clone(&list);
            let lock = Arc::clone(&lock);
            let total = Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                for i in 0..iters {
                    let idx = list.publish(i % 7).expect("live thread has an index");
                    loop {
                        if let Some(resp) = list.poll(idx) {
                            assert_eq!(resp, (i % 7) * 2);
                            break;
                        }
                        // Timeout path: compete for the combiner role.
                        let combined = list.combine_with(lock.as_ref(), |_, op| {
                            total.fetch_add(op, Ordering::Relaxed);
                            op * 2
                        });
                        if combined.is_some() {
                            // Our own op was either in the chain we just
                            // drained or in one an earlier combiner took;
                            // either way it is DONE now.
                            let resp = list.poll(idx).expect("drain answers every publication");
                            assert_eq!(resp, (i % 7) * 2);
                            break;
                        }
                        crate::relax();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let expected: u64 = (0..iters).map(|i| i % 7).sum::<u64>() * THREADS;
        assert_eq!(total.load(Ordering::Relaxed), expected);
        assert!(!list.pending(), "no publication stranded");
    }
}
