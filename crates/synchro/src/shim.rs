//! Schedulable atomics: the explorer's window into the OPTIK hot paths.
//!
//! Every shared word that participates in an OPTIK *validation point* —
//! the shard version locks, the routing-table bounds, the TTL clock and
//! sweep cursor, the per-shard op counters — is held in one of the
//! wrapper types below instead of a raw `core::sync::atomic` type. In a
//! normal build the wrappers are `#[repr(transparent)]` newtypes whose
//! `#[inline]` methods compile to the identical raw atomic instruction:
//! zero cost, no branches, nothing to measure.
//!
//! Under `--cfg optik_explore` each operation first reports itself to the
//! **explore hook** — a per-thread trap installed by the deterministic
//! schedule explorer (`optik-explore`). The trap parks the thread until
//! the explorer's cooperative scheduler grants it the next step, which
//! turns every shim operation into a *yield point*: the explorer can
//! enumerate, bound, record, and byte-exactly replay the interleavings of
//! every validation point without touching the code under test.
//!
//! The hook machinery itself ([`Access`], [`ExploreHook`],
//! [`yield_point`], [`install_hook`]) is compiled unconditionally — it is
//! a few dozen bytes and lets the explorer's own model programs run under
//! plain `cargo test` — but nothing in the workspace *calls* it outside
//! `--cfg optik_explore` builds, so the tier-1 hot paths never pay for it.
//!
//! Yield-point granularity: only shim-wrapped words trap. Backend map
//! internals (node links, value cells) keep their raw atomics, so a
//! backend operation executes atomically *between* two validation points.
//! That is deliberate — the explorer targets the store-level
//! validate-and-retry logic; the backends have their own linearizability
//! tier.

use core::sync::atomic::Ordering;
use std::cell::RefCell;
use std::sync::Arc;

/// What a trapped operation is about to do. `Load` never changes the
/// word; `Store` and `Rmw` do (the explorer uses this to re-enable
/// spin-waiting threads parked on a [`AccessKind::Yield`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An atomic load.
    Load,
    /// An atomic store.
    Store,
    /// An atomic read-modify-write (swap, fetch-add, compare-exchange —
    /// reported before the attempt, so a failed CAS also traps once).
    Rmw,
    /// A voluntary yield ([`crate::relax`] inside a spin-wait): the
    /// thread is waiting for *another* thread's write and should not be
    /// rescheduled until one happens.
    Yield,
    /// A model thread announcing itself before its first instruction.
    Start,
}

/// One yield point: the raw address of the word (the explorer interns it
/// into a stable per-schedule object id) and what is about to happen.
#[derive(Debug, Clone, Copy)]
pub struct Access {
    /// Address of the atomic word, `0` for [`AccessKind::Yield`] /
    /// [`AccessKind::Start`].
    pub addr: usize,
    /// Operation class.
    pub kind: AccessKind,
}

impl Access {
    /// A yield-point for a voluntary spin-wait yield.
    pub const YIELD: Access = Access {
        addr: 0,
        kind: AccessKind::Yield,
    };
    /// A yield-point for a model thread about to start.
    pub const START: Access = Access {
        addr: 0,
        kind: AccessKind::Start,
    };
}

/// The explorer side of a trap. Implementations park the calling thread
/// until its next step is granted; returning resumes the operation.
pub trait ExploreHook: Send + Sync {
    /// Called by an instrumented thread immediately *before* it performs
    /// `access`.
    fn yield_point(&self, access: Access);
}

std::thread_local! {
    static HOOK: RefCell<Option<Arc<dyn ExploreHook>>> = const { RefCell::new(None) };
}

/// Installs `hook` as this thread's trap. Returns a guard that removes it
/// on drop (including unwinds), restoring pass-through behavior.
pub fn install_hook(hook: Arc<dyn ExploreHook>) -> HookGuard {
    HOOK.with(|h| *h.borrow_mut() = Some(hook));
    HookGuard { _private: () }
}

/// Uninstalls this thread's explore hook when dropped.
#[must_use = "dropping the guard immediately uninstalls the hook"]
pub struct HookGuard {
    _private: (),
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        HOOK.with(|h| *h.borrow_mut() = None);
    }
}

/// Whether the calling thread runs under an explore hook.
#[inline]
pub fn hook_active() -> bool {
    HOOK.with(|h| h.borrow().is_some())
}

/// Reports `access` to this thread's hook, parking until the scheduler
/// grants the step. No-op when no hook is installed.
#[inline]
pub fn yield_point(access: Access) {
    // Clone the Arc out so the RefCell borrow is released before the
    // (potentially long) park — the hook may be re-entered by panic
    // payload drops otherwise.
    let hook = HOOK.with(|h| h.borrow().clone());
    if let Some(hook) = hook {
        hook.yield_point(access);
    }
}

macro_rules! shim_atomic {
    ($(#[$meta:meta])* $name:ident, $raw:path, $prim:ty) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        #[repr(transparent)]
        pub struct $name {
            word: $raw,
        }

        impl $name {
            /// Creates a new atomic initialized to `v`.
            #[inline]
            pub const fn new(v: $prim) -> Self {
                Self { word: <$raw>::new(v) }
            }

            #[cfg(optik_explore)]
            #[inline]
            fn trap(&self, kind: AccessKind) {
                yield_point(Access {
                    addr: &self.word as *const _ as usize,
                    kind,
                });
            }

            #[cfg(not(optik_explore))]
            #[inline(always)]
            fn trap(&self, _kind: AccessKind) {}

            /// Atomic load.
            #[inline]
            pub fn load(&self, order: Ordering) -> $prim {
                self.trap(AccessKind::Load);
                self.word.load(order)
            }

            /// Atomic store.
            #[inline]
            pub fn store(&self, v: $prim, order: Ordering) {
                self.trap(AccessKind::Store);
                self.word.store(v, order)
            }

            /// Atomic swap.
            #[inline]
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                self.trap(AccessKind::Rmw);
                self.word.swap(v, order)
            }

            /// Atomic fetch-add (wrapping).
            #[inline]
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                self.trap(AccessKind::Rmw);
                self.word.fetch_add(v, order)
            }

            /// Atomic fetch-sub (wrapping).
            #[inline]
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                self.trap(AccessKind::Rmw);
                self.word.fetch_sub(v, order)
            }

            /// Atomic fetch-max.
            #[inline]
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                self.trap(AccessKind::Rmw);
                self.word.fetch_max(v, order)
            }

            /// Atomic compare-exchange (strong). The trap fires before
            /// the attempt, so failed exchanges are schedule points too —
            /// exactly the OPTIK `try_lock_version` race the explorer
            /// needs to drive both ways.
            #[inline]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.trap(AccessKind::Rmw);
                self.word.compare_exchange(current, new, success, failure)
            }

            /// Plain (non-atomic) read of the raw value via `&mut`.
            #[inline]
            pub fn get_mut(&mut self) -> &mut $prim {
                self.word.get_mut()
            }
        }
    };
}

shim_atomic!(
    /// Schedulable [`core::sync::atomic::AtomicU64`]: pass-through in
    /// normal builds, a yield point per operation under
    /// `--cfg optik_explore`.
    AtomicU64,
    core::sync::atomic::AtomicU64,
    u64
);

shim_atomic!(
    /// Schedulable [`core::sync::atomic::AtomicUsize`] (see [`AtomicU64`]).
    AtomicUsize,
    core::sync::atomic::AtomicUsize,
    usize
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::SeqCst;
    use std::sync::Mutex;

    #[test]
    fn passthrough_semantics_match_raw_atomics() {
        let a = AtomicU64::new(5);
        assert_eq!(a.load(SeqCst), 5);
        a.store(7, SeqCst);
        assert_eq!(a.swap(9, SeqCst), 7);
        assert_eq!(a.fetch_add(1, SeqCst), 9);
        assert_eq!(a.fetch_sub(2, SeqCst), 10);
        assert_eq!(a.fetch_max(100, SeqCst), 8);
        assert_eq!(a.compare_exchange(100, 3, SeqCst, SeqCst), Ok(100));
        assert_eq!(a.compare_exchange(100, 4, SeqCst, SeqCst), Err(3));
        let mut a = a;
        assert_eq!(*a.get_mut(), 3);
    }

    #[test]
    fn shim_is_layout_transparent() {
        // The normal-build wrapper must add nothing: CachePadded sums and
        // struct layouts are part of the measured hot paths.
        assert_eq!(
            core::mem::size_of::<AtomicU64>(),
            core::mem::size_of::<core::sync::atomic::AtomicU64>()
        );
        assert_eq!(
            core::mem::size_of::<AtomicUsize>(),
            core::mem::size_of::<core::sync::atomic::AtomicUsize>()
        );
    }

    struct CountingHook(Mutex<Vec<AccessKind>>);
    impl ExploreHook for CountingHook {
        fn yield_point(&self, access: Access) {
            self.0.lock().unwrap().push(access.kind);
        }
    }

    #[test]
    fn hook_registration_is_per_thread_and_guard_scoped() {
        let hook = Arc::new(CountingHook(Mutex::new(Vec::new())));
        assert!(!hook_active());
        {
            let _g = install_hook(hook.clone());
            assert!(hook_active());
            yield_point(Access::YIELD);
            yield_point(Access::START);
            // Another thread never sees this thread's hook.
            std::thread::scope(|s| {
                s.spawn(|| {
                    assert!(!hook_active());
                    yield_point(Access::YIELD); // silently ignored
                });
            });
        }
        assert!(!hook_active());
        yield_point(Access::YIELD); // ignored after guard drop
        assert_eq!(
            *hook.0.lock().unwrap(),
            vec![AccessKind::Yield, AccessKind::Start]
        );
    }
}
