//! Exponential backoff, mirroring the paper's experimental methodology.
//!
//! §5 of the paper: "For fairness, all data structures use the exact same
//! backoff function. We use exponentially increasing backoff times with up
//! to 16k cycles maximum backoff." This module provides that function. The
//! unit of waiting is one `core::hint::spin_loop()` invocation, which on
//! x86 lowers to `pause`; a pause costs on the order of a few cycles, so the
//! default cap of [`Backoff::DEFAULT_MAX_WAIT`] iterations approximates the
//! paper's 16k-cycle ceiling.
//!
//! One deliberate deviation: once saturated, each [`Backoff::backoff`] call
//! also yields to the OS scheduler (see its docs), so on oversubscribed
//! machines latency numbers can include scheduler time the paper's purely
//! cycle-bounded backoff would not — same caveat as [`relax`] in the
//! ROADMAP's single-core-fidelity open item.

use core::hint;

/// Exponentially increasing busy-wait backoff with a hard cap.
///
/// Each call to [`Backoff::backoff`] spins for the current wait amount and
/// then doubles it, saturating at the configured maximum. Use one value per
/// retry loop; the state is intentionally not shared between threads.
///
/// # Examples
///
/// ```
/// use synchro::Backoff;
///
/// let mut bo = Backoff::new();
/// for attempt in 0..4 {
///     // ... try an optimistic operation, fail, then:
///     bo.backoff();
/// }
/// assert!(bo.waited() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    current: u32,
    max: u32,
    total: u64,
}

impl Backoff {
    /// Initial wait in spin iterations.
    pub const INITIAL_WAIT: u32 = 2;
    /// Default cap, approximating the paper's 16k-cycle maximum backoff.
    pub const DEFAULT_MAX_WAIT: u32 = 1 << 12;

    /// Creates a backoff with the default cap.
    #[inline]
    pub fn new() -> Self {
        Self::with_max(Self::DEFAULT_MAX_WAIT)
    }

    /// Creates a backoff with a custom cap (in spin iterations).
    #[inline]
    pub fn with_max(max: u32) -> Self {
        Self {
            current: Self::INITIAL_WAIT,
            max: max.max(1),
            total: 0,
        }
    }

    /// Spins for the current wait amount, then doubles it (saturating).
    ///
    /// Once saturated, each call also yields to the OS scheduler: a retry
    /// loop that has already waited the paper's maximum backoff is losing
    /// to some other thread, and on an oversubscribed machine that thread
    /// may be preempted and need the CPU to make progress at all.
    #[inline]
    pub fn backoff(&mut self) {
        #[cfg(optik_explore)]
        if crate::shim::hook_active() {
            // Under the explorer real time does not exist: report a
            // voluntary yield so the scheduler can hand the step to the
            // thread this backoff is waiting on, and skip the spin.
            crate::shim::yield_point(crate::shim::Access::YIELD);
            self.current = (self.current.saturating_mul(2)).min(self.max);
            return;
        }
        let n = self.current;
        spin(n);
        self.total += u64::from(n);
        if self.is_saturated() {
            std::thread::yield_now();
        }
        self.current = (self.current.saturating_mul(2)).min(self.max);
    }

    /// Whether the backoff has reached its maximum wait.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.current >= self.max
    }

    /// Total spin iterations waited so far.
    #[inline]
    pub fn waited(&self) -> u64 {
        self.total
    }

    /// Resets the wait back to the initial value.
    #[inline]
    pub fn reset(&mut self) {
        self.current = Self::INITIAL_WAIT;
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

/// Spins for `n` iterations of the CPU's pause hint.
#[inline]
pub fn spin(n: u32) {
    for _ in 0..n {
        hint::spin_loop();
    }
}

/// One iteration of an unbounded wait loop: usually the CPU's pause hint,
/// but every 128th call per thread yields to the OS scheduler.
///
/// Every spin-wait in the workspace that waits on *another thread's*
/// action (lock hand-off, version change, queue link) must use this
/// instead of a bare `spin_loop()`. On machines with more runnable
/// threads than cores — CI boxes, laptops — a pure spin loop burns its
/// entire scheduler quantum while the thread it waits on is preempted;
/// the periodic yield lets the holder run. On an unloaded multicore the
/// yield triggers at most once per 128 waited iterations, so measured
/// behavior matches the paper's pause-spin loops.
///
/// Setting `OPTIK_PURE_SPIN=1` (read once per process) disables the
/// periodic yield, restoring the paper's pure pause-spin loop. This
/// exists to *measure* the yield's overhead (see DESIGN.md, "relax()
/// yield overhead"); running the test suite with it on an oversubscribed
/// box brings back the multi-minute spin convoys the yield was added to
/// fix.
#[inline]
pub fn relax() {
    use core::cell::Cell;
    use std::sync::OnceLock;
    #[cfg(optik_explore)]
    if crate::shim::hook_active() {
        // A spin-wait iteration under the explorer is a scheduling
        // decision, not a pause: park at a Yield point until another
        // thread's write re-enables this one.
        crate::shim::yield_point(crate::shim::Access::YIELD);
        return;
    }
    static PURE_SPIN: OnceLock<bool> = OnceLock::new();
    if *PURE_SPIN.get_or_init(|| std::env::var_os("OPTIK_PURE_SPIN").is_some_and(|v| v == "1")) {
        hint::spin_loop();
        return;
    }
    std::thread_local! {
        static SPINS: Cell<u32> = const { Cell::new(0) };
    }
    let n = SPINS.with(|c| {
        let n = c.get().wrapping_add(1);
        c.set(n);
        n
    });
    if n & 0x7f == 0 {
        std::thread::yield_now();
    } else {
        hint::spin_loop();
    }
}

/// Proportional backoff: waits `distance * unit` pause iterations.
///
/// Used by the ticket-lock-based OPTIK `lock_backoff` extension (§3.2 of the
/// paper): a thread that knows it is `distance` slots away from acquiring a
/// ticket lock waits proportionally instead of hammering the lock word.
#[inline]
pub fn proportional(distance: u32, unit: u32) -> u32 {
    let n = distance.saturating_mul(unit);
    spin(n);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_exponentially_then_saturates() {
        let mut bo = Backoff::with_max(16);
        assert!(!bo.is_saturated());
        bo.backoff(); // waited 2, current 4
        bo.backoff(); // waited 4, current 8
        bo.backoff(); // waited 8, current 16
        assert!(bo.is_saturated());
        bo.backoff(); // waited 16, current stays 16
        assert!(bo.is_saturated());
        assert_eq!(bo.waited(), 2 + 4 + 8 + 16);
    }

    #[test]
    fn reset_restores_initial_wait() {
        let mut bo = Backoff::with_max(8);
        bo.backoff();
        bo.backoff();
        bo.reset();
        assert!(!bo.is_saturated());
        let before = bo.waited();
        bo.backoff();
        assert_eq!(bo.waited(), before + u64::from(Backoff::INITIAL_WAIT));
    }

    #[test]
    fn max_is_clamped_to_at_least_one() {
        let mut bo = Backoff::with_max(0);
        bo.backoff();
        assert!(bo.is_saturated());
    }

    #[test]
    fn proportional_waits_product() {
        assert_eq!(proportional(3, 10), 30);
        assert_eq!(proportional(0, 10), 0);
        // saturating multiply, not overflow (don't actually spin u32::MAX:
        // exercise the arithmetic path the function uses)
        assert_eq!(u32::MAX.saturating_mul(2), u32::MAX);
    }

    #[test]
    fn default_matches_new() {
        let a = Backoff::default();
        let b = Backoff::new();
        assert_eq!(a.max, b.max);
        assert_eq!(a.current, b.current);
    }
}
