//! Exponential backoff, mirroring the paper's experimental methodology.
//!
//! §5 of the paper: "For fairness, all data structures use the exact same
//! backoff function. We use exponentially increasing backoff times with up
//! to 16k cycles maximum backoff." This module provides that function. The
//! unit of waiting is one `core::hint::spin_loop()` invocation, which on
//! x86 lowers to `pause`; a pause costs on the order of a few cycles, so the
//! default cap of [`Backoff::DEFAULT_MAX_WAIT`] iterations approximates the
//! paper's 16k-cycle ceiling.
//!
//! On top of the paper's fixed policy, [`Backoff::adaptive`] seeds each
//! retry loop's *ceiling* from the thread's recent validation-failure
//! streaks: a thread whose optimistic operations have been succeeding
//! starts with a low ceiling (a failed validation costs a few pauses and a
//! fast retry), while a thread stuck in a hot-shard storm carries its high
//! ceiling into the next loop and backs off toward the 16k ceiling
//! immediately instead of re-climbing from 2. The state is a per-thread
//! EWMA; nothing is shared between threads, so the adaptive policy adds no
//! coherence traffic to the loops it is tuning.
//!
//! One deliberate deviation: once saturated, each [`Backoff::backoff`] call
//! also yields to the OS scheduler (unless `OPTIK_PURE_SPIN=1`, see
//! [`relax`]), so on oversubscribed machines latency numbers can include
//! scheduler time the paper's purely cycle-bounded backoff would not —
//! same caveat as [`relax`] in the ROADMAP's single-core-fidelity open item.

use core::cell::Cell;
use core::hint;

/// Exponentially increasing busy-wait backoff with a hard cap.
///
/// Each call to [`Backoff::backoff`] spins for the current wait amount and
/// then doubles it, saturating at the configured maximum. Use one value per
/// retry loop; the state is intentionally not shared between threads.
///
/// # Examples
///
/// ```
/// use synchro::Backoff;
///
/// let mut bo = Backoff::new();
/// for attempt in 0..4 {
///     // ... try an optimistic operation, fail, then:
///     bo.backoff();
/// }
/// assert!(bo.waited() > 0);
/// ```
#[derive(Debug)]
pub struct Backoff {
    current: u32,
    /// Soft ceiling: where doubling stops *for now*. Fixed (== `max`) for
    /// [`Backoff::new`]; seeded from the thread's streak EWMA and escalated
    /// under sustained failure for [`Backoff::adaptive`].
    cap: u32,
    /// Hard ceiling (the paper's 16k-cycle bound for the default).
    max: u32,
    adaptive: bool,
    total: u64,
}

std::thread_local! {
    /// EWMA of the wait level recent adaptive retry loops ended at.
    /// Thread-local on purpose: sharing contention estimates between
    /// threads would put a coherence hotspot inside the backoff path.
    static STREAK_SEED: Cell<u32> = const { Cell::new(Backoff::INITIAL_WAIT) };
}

impl Backoff {
    /// Initial wait in spin iterations.
    pub const INITIAL_WAIT: u32 = 2;
    /// Default cap, approximating the paper's 16k-cycle maximum backoff.
    pub const DEFAULT_MAX_WAIT: u32 = 1 << 12;

    /// Creates a backoff with the default cap and the paper's fixed policy.
    #[inline]
    pub fn new() -> Self {
        Self::with_max(Self::DEFAULT_MAX_WAIT)
    }

    /// Creates a backoff with a custom cap (in spin iterations).
    #[inline]
    pub fn with_max(max: u32) -> Self {
        let max = max.max(1);
        Self {
            current: Self::INITIAL_WAIT,
            cap: max,
            max,
            adaptive: false,
            total: 0,
        }
    }

    /// Creates a contention-adaptive backoff for one retry loop.
    ///
    /// The soft ceiling is seeded from this thread's recent failure
    /// streaks (an EWMA of where previous adaptive loops ended): after a
    /// run of clean validations the ceiling sits near
    /// [`Backoff::INITIAL_WAIT`], so an isolated conflict costs a few
    /// pauses; during a hot-shard storm the ceiling rides up toward
    /// [`Backoff::DEFAULT_MAX_WAIT`], so re-entering the loop resumes the
    /// paper's maximum backoff instead of re-climbing. Sustained failure
    /// *within* one loop also escalates the ceiling (×4 per touch, up to
    /// the hard cap), so a mis-seeded low ceiling cannot trap a storm at
    /// short waits. Dropping the value folds the final wait level back
    /// into the thread-local seed.
    #[inline]
    pub fn adaptive() -> Self {
        let seed = STREAK_SEED
            .with(Cell::get)
            .clamp(Self::INITIAL_WAIT, Self::DEFAULT_MAX_WAIT);
        Self {
            current: Self::INITIAL_WAIT,
            cap: seed,
            max: Self::DEFAULT_MAX_WAIT,
            adaptive: true,
            total: 0,
        }
    }

    /// Spins for the current wait amount, then doubles it (saturating at
    /// the ceiling; adaptive ceilings escalate toward the hard cap while
    /// failures continue).
    ///
    /// Once saturated at the hard cap, each call also yields to the OS
    /// scheduler: a retry loop that has already waited the paper's maximum
    /// backoff is losing to some other thread, and on an oversubscribed
    /// machine that thread may be preempted and need the CPU to make
    /// progress at all. `OPTIK_PURE_SPIN=1` disables the yield (paper
    /// methodology; see [`relax`]).
    #[inline]
    pub fn backoff(&mut self) {
        optik_probe::count(optik_probe::Event::BackoffWait);
        #[cfg(optik_explore)]
        if crate::shim::hook_active() {
            // Under the explorer real time does not exist: report a
            // voluntary yield so the scheduler can hand the step to the
            // thread this backoff is waiting on, and skip the spin.
            crate::shim::yield_point(crate::shim::Access::YIELD);
            self.advance();
            return;
        }
        let n = self.current;
        spin(n);
        self.total += u64::from(n);
        if self.current >= self.max && !pure_spin() {
            std::thread::yield_now();
        }
        self.advance();
    }

    /// Doubles the wait, escalating an adaptive soft ceiling that keeps
    /// getting hit.
    #[inline]
    fn advance(&mut self) {
        if self.adaptive && self.current >= self.cap && self.cap < self.max {
            optik_probe::count(optik_probe::Event::BackoffEscalate);
            self.cap = self.cap.saturating_mul(4).min(self.max);
        }
        self.current = (self.current.saturating_mul(2)).min(self.cap);
    }

    /// Whether the backoff has reached its (current) maximum wait.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.current >= self.cap
    }

    /// The current wait level in spin iterations (what the next
    /// [`Backoff::backoff`] call will wait). Alongside
    /// [`contention_level`], this is the within-loop half of the
    /// contention signal: the EWMA only folds in on drop, so a loop
    /// escalating *right now* reads its own level instead.
    #[inline]
    pub fn level(&self) -> u32 {
        self.current
    }

    /// Total spin iterations waited so far.
    #[inline]
    pub fn waited(&self) -> u64 {
        self.total
    }

    /// Resets the wait back to the initial value.
    #[inline]
    pub fn reset(&mut self) {
        self.current = Self::INITIAL_WAIT;
    }
}

impl Drop for Backoff {
    fn drop(&mut self) {
        if !self.adaptive {
            return;
        }
        // Fold the observed contention level into the thread's seed:
        // weight the new observation 3:1 so a storm raises the next loop's
        // ceiling within a couple of operations, and an untouched loop
        // (current == INITIAL_WAIT) decays it just as fast.
        STREAK_SEED.with(|seed| {
            let old = seed.get();
            seed.set(
                (old / 4)
                    .saturating_add(self.current / 4 * 3)
                    .max(Self::INITIAL_WAIT),
            );
        });
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

/// The calling thread's current contention estimate: the EWMA seed that
/// [`Backoff::adaptive`] loops start their soft ceiling from, in spin
/// iterations. Near [`Backoff::INITIAL_WAIT`] after a run of clean
/// operations, toward [`Backoff::DEFAULT_MAX_WAIT`] during a hot-shard
/// storm. Read-only and thread-local — polling it adds no coherence
/// traffic. The kv store's flat-combining engagement policy keys off
/// this value (see `optik-kv`).
#[inline]
pub fn contention_level() -> u32 {
    STREAK_SEED.with(Cell::get)
}

/// Folds a clean first-try acquisition into the calling thread's
/// contention EWMA: the same 3:1 decay an untouched adaptive loop
/// applies on drop, without constructing one. Fast paths that succeed
/// without ever creating a [`Backoff`] call this so the estimate decays
/// once the storm passes instead of pinning at its peak.
#[inline]
pub fn note_calm() {
    STREAK_SEED.with(|seed| {
        let old = seed.get();
        seed.set((old / 4).max(Backoff::INITIAL_WAIT));
    });
}

/// Whether `OPTIK_PURE_SPIN=1` was set at first use (read once per
/// process): run pure pause-spin loops with no scheduler yields, matching
/// the paper's cycle-bounded methodology. See [`relax`].
#[inline]
pub(crate) fn pure_spin() -> bool {
    use std::sync::OnceLock;
    static PURE_SPIN: OnceLock<bool> = OnceLock::new();
    *PURE_SPIN.get_or_init(|| std::env::var_os("OPTIK_PURE_SPIN").is_some_and(|v| v == "1"))
}

/// Spins for `n` iterations of the CPU's pause hint.
#[inline]
pub fn spin(n: u32) {
    for _ in 0..n {
        hint::spin_loop();
    }
}

/// One iteration of an unbounded wait loop: usually the CPU's pause hint,
/// but every 128th call per thread yields to the OS scheduler.
///
/// Every spin-wait in the workspace that waits on *another thread's*
/// action (lock hand-off, version change, queue link) must use this
/// instead of a bare `spin_loop()`. On machines with more runnable
/// threads than cores — CI boxes, laptops — a pure spin loop burns its
/// entire scheduler quantum while the thread it waits on is preempted;
/// the periodic yield lets the holder run. On an unloaded multicore the
/// yield triggers at most once per 128 waited iterations, so measured
/// behavior matches the paper's pause-spin loops.
///
/// Setting `OPTIK_PURE_SPIN=1` (read once per process) disables the
/// periodic yield — here *and* in [`Backoff::backoff`]'s saturation yield —
/// restoring the paper's purely cycle-bounded behavior. This exists to
/// *measure* the yield's overhead (see DESIGN.md, "relax() yield
/// overhead"); running the test suite with it on an oversubscribed box
/// brings back the multi-minute spin convoys the yield was added to fix.
#[inline]
pub fn relax() {
    #[cfg(optik_explore)]
    if crate::shim::hook_active() {
        // A spin-wait iteration under the explorer is a scheduling
        // decision, not a pause: park at a Yield point until another
        // thread's write re-enables this one.
        crate::shim::yield_point(crate::shim::Access::YIELD);
        return;
    }
    if pure_spin() {
        hint::spin_loop();
        return;
    }
    std::thread_local! {
        static SPINS: Cell<u32> = const { Cell::new(0) };
    }
    let n = SPINS.with(|c| {
        let n = c.get().wrapping_add(1);
        c.set(n);
        n
    });
    if n & 0x7f == 0 {
        std::thread::yield_now();
    } else {
        hint::spin_loop();
    }
}

/// Proportional backoff: waits `distance * unit` pause iterations.
///
/// Used by the ticket-lock-based OPTIK `lock_backoff` extension (§3.2 of the
/// paper): a thread that knows it is `distance` slots away from acquiring a
/// ticket lock waits proportionally instead of hammering the lock word.
#[inline]
pub fn proportional(distance: u32, unit: u32) -> u32 {
    let n = distance.saturating_mul(unit);
    spin(n);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_exponentially_then_saturates() {
        let mut bo = Backoff::with_max(16);
        assert!(!bo.is_saturated());
        bo.backoff(); // waited 2, current 4
        bo.backoff(); // waited 4, current 8
        bo.backoff(); // waited 8, current 16
        assert!(bo.is_saturated());
        bo.backoff(); // waited 16, current stays 16
        assert!(bo.is_saturated());
        assert_eq!(bo.waited(), 2 + 4 + 8 + 16);
    }

    #[test]
    fn reset_restores_initial_wait() {
        let mut bo = Backoff::with_max(8);
        bo.backoff();
        bo.backoff();
        bo.reset();
        assert!(!bo.is_saturated());
        let before = bo.waited();
        bo.backoff();
        assert_eq!(bo.waited(), before + u64::from(Backoff::INITIAL_WAIT));
    }

    #[test]
    fn max_is_clamped_to_at_least_one() {
        let mut bo = Backoff::with_max(0);
        bo.backoff();
        assert!(bo.is_saturated());
    }

    #[test]
    fn proportional_waits_product() {
        assert_eq!(proportional(3, 10), 30);
        assert_eq!(proportional(0, 10), 0);
        // saturating multiply, not overflow (don't actually spin u32::MAX:
        // exercise the arithmetic path the function uses)
        assert_eq!(u32::MAX.saturating_mul(2), u32::MAX);
    }

    #[test]
    fn default_matches_new() {
        let a = Backoff::default();
        let b = Backoff::new();
        assert_eq!(a.max, b.max);
        assert_eq!(a.current, b.current);
    }

    /// The adaptive seed is thread-local; run each scenario on a fresh
    /// thread so test order can't leak seeds between assertions.
    fn on_fresh_thread(f: impl FnOnce() + Send + 'static) {
        std::thread::spawn(f).join().unwrap();
    }

    #[test]
    fn adaptive_starts_cheap_when_uncontended() {
        on_fresh_thread(|| {
            // A history of clean loops keeps the ceiling at the floor …
            for _ in 0..8 {
                let _ = Backoff::adaptive();
            }
            let bo = Backoff::adaptive();
            assert_eq!(bo.cap, Backoff::INITIAL_WAIT);
            // … so one failed validation costs a couple of pauses.
            let mut bo = bo;
            bo.backoff();
            assert!(bo.waited() <= u64::from(Backoff::INITIAL_WAIT));
        });
    }

    #[test]
    fn adaptive_escalates_to_the_hard_cap_under_sustained_failure() {
        on_fresh_thread(|| {
            let mut bo = Backoff::adaptive();
            // Even with the lowest seed, a storm must reach the paper's
            // ceiling within a bounded number of retries.
            for _ in 0..32 {
                bo.advance(); // growth logic without actually spinning 16k
            }
            assert_eq!(bo.current, Backoff::DEFAULT_MAX_WAIT);
        });
    }

    #[test]
    fn adaptive_seed_rises_after_storms_and_decays_after_calm() {
        on_fresh_thread(|| {
            // Storm: a loop that ends at a high wait raises the seed …
            {
                let mut bo = Backoff::adaptive();
                for _ in 0..32 {
                    bo.advance();
                }
            }
            let stormy = STREAK_SEED.with(Cell::get);
            assert!(stormy > Backoff::INITIAL_WAIT, "seed after storm: {stormy}");
            // … so the next loop starts with an elevated ceiling.
            assert!(Backoff::adaptive().cap > Backoff::INITIAL_WAIT);
            // Calm: untouched loops decay the seed back to the floor.
            for _ in 0..16 {
                let _ = Backoff::adaptive();
            }
            assert_eq!(STREAK_SEED.with(Cell::get), Backoff::INITIAL_WAIT);
        });
    }

    #[test]
    fn contention_level_tracks_storms_and_note_calm_decays_it() {
        on_fresh_thread(|| {
            assert_eq!(contention_level(), Backoff::INITIAL_WAIT);
            {
                let mut bo = Backoff::adaptive();
                for _ in 0..32 {
                    bo.advance();
                }
                // The within-loop half of the signal is visible before
                // the drop folds it into the EWMA.
                assert_eq!(bo.level(), Backoff::DEFAULT_MAX_WAIT);
            }
            assert!(contention_level() > Backoff::INITIAL_WAIT);
            // Clean fast-path acquisitions decay the estimate back to
            // the floor without constructing a Backoff.
            for _ in 0..16 {
                note_calm();
            }
            assert_eq!(contention_level(), Backoff::INITIAL_WAIT);
        });
    }

    #[test]
    fn fixed_policy_is_unaffected_by_the_adaptive_seed() {
        on_fresh_thread(|| {
            {
                let mut bo = Backoff::adaptive();
                for _ in 0..32 {
                    bo.advance();
                }
            }
            // Backoff::new ignores the seed entirely.
            let bo = Backoff::new();
            assert_eq!(bo.cap, Backoff::DEFAULT_MAX_WAIT);
            assert_eq!(bo.current, Backoff::INITIAL_WAIT);
        });
    }
}
