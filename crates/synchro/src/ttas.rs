//! Test-and-test-and-set spinlock.
//!
//! Like [`crate::TasLock`] but spins on a plain load while the lock is held,
//! only attempting the atomic swap once the lock is observed free. Waiters
//! therefore spin in their local caches and the line is invalidated only on
//! actual acquisition attempts. This is the lock used in the paper's Fig. 5
//! straw-man ("4 bytes for a test-and-test-and-set lock and 4 bytes for the
//! version number").

use core::sync::atomic::{AtomicBool, Ordering};

use crate::lock_api::RawLock;

/// A test-and-test-and-set spinlock.
#[derive(Debug, Default)]
pub struct TtasLock {
    locked: AtomicBool,
}

impl TtasLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
        }
    }
}

impl RawLock for TtasLock {
    #[inline]
    fn lock(&self) {
        loop {
            // Test: spin locally while held.
            while self.locked.load(Ordering::Relaxed) {
                crate::relax();
            }
            // Test-and-set: attempt the acquisition.
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
        }
    }

    #[inline]
    fn try_lock(&self) -> bool {
        // Avoid the write traffic of a doomed swap.
        !self.locked.load(Ordering::Relaxed) && !self.locked.swap(true, Ordering::Acquire)
    }

    #[inline]
    fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_lock_unlock() {
        let l = TtasLock::new();
        l.lock();
        assert!(l.is_locked());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
        assert!(!l.is_locked());
    }

    #[test]
    fn critical_sections_are_exclusive() {
        use std::sync::Arc;

        let iters = crate::stress::ops(10_000);
        let lock = Arc::new(TtasLock::new());
        let data = Arc::new(core::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            let data = Arc::clone(&data);
            handles.push(std::thread::spawn(move || {
                for _ in 0..iters {
                    lock.lock();
                    // Non-atomic-looking read-modify-write through two atomics
                    // ops; exclusivity makes it exact.
                    let v = data.load(Ordering::Relaxed);
                    data.store(v + 1, Ordering::Relaxed);
                    lock.unlock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(data.load(Ordering::Relaxed), 8 * iters);
    }
}
