//! Cheap timestamp counter for latency measurements.
//!
//! The paper measures per-operation latencies with "the per-core timestamp
//! counter for accurately measuring the duration of an operation in cycles"
//! (§5). On x86_64 we read `rdtsc` directly; elsewhere we fall back to a
//! monotonic clock scaled to nanoseconds (close enough to cycles at ~GHz
//! clock rates for distribution *shapes*).

/// Reads the current timestamp, in cycles on x86_64 (nanoseconds elsewhere).
#[inline]
#[cfg(target_arch = "x86_64")]
pub fn now() -> u64 {
    // SAFETY: `rdtsc` has no preconditions; it only reads the TSC.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Reads the current timestamp, in cycles on x86_64 (nanoseconds elsewhere).
#[inline]
#[cfg(not(target_arch = "x86_64"))]
pub fn now() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Returns the elapsed ticks between two [`now`] readings.
///
/// Saturates at zero if the counter appears to run backwards (possible
/// across socket migrations on exotic hardware).
#[inline]
pub fn elapsed(start: u64, end: u64) -> u64 {
    end.saturating_sub(start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic_enough() {
        let a = now();
        // Burn a little time so even coarse clocks advance.
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let b = now();
        assert!(b >= a, "timestamp went backwards: {a} -> {b}");
    }

    #[test]
    fn elapsed_saturates() {
        assert_eq!(elapsed(10, 5), 0);
        assert_eq!(elapsed(5, 10), 5);
    }
}
