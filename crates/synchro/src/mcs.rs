//! MCS queue spinlock (Mellor-Crummey & Scott \[36\]).
//!
//! Waiters form an explicit linked queue; each spins on a flag in its *own*
//! queue node, so under contention there is no shared spin location and the
//! lock scales gracefully. The paper uses MCS for the global-lock map/list
//! baselines ("for highly-contented locks, such as the locks in concurrent
//! queues, we use MCS locks", §5).
//!
//! The queue node must outlive the critical section, so acquisition takes a
//! caller-provided [`McsNode`] and returns an RAII [`McsGuard`]. For the
//! common "one lock held at a time" case, [`McsLock::with`] manages a
//! stack-allocated node for you.

use core::ptr;
use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use crossbeam_utils::CachePadded;

/// A queue node for [`McsLock`]. One per in-flight acquisition.
#[derive(Debug)]
pub struct McsNode {
    next: AtomicPtr<McsNode>,
    locked: CachePadded<AtomicBool>,
}

impl McsNode {
    /// Creates a fresh queue node.
    pub fn new() -> Self {
        Self {
            next: AtomicPtr::new(ptr::null_mut()),
            locked: CachePadded::new(AtomicBool::new(false)),
        }
    }
}

impl Default for McsNode {
    fn default() -> Self {
        Self::new()
    }
}

/// The MCS queue lock: a single tail pointer.
#[derive(Debug)]
pub struct McsLock {
    tail: AtomicPtr<McsNode>,
}

// SAFETY: all cross-thread traffic goes through atomics.
unsafe impl Send for McsLock {}
unsafe impl Sync for McsLock {}

impl McsLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        Self {
            tail: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Acquires the lock using `node` for queueing.
    ///
    /// The returned guard releases the lock on drop. The node is borrowed for
    /// the guard's lifetime, which statically prevents reuse while queued.
    pub fn lock<'a>(&'a self, node: &'a mut McsNode) -> McsGuard<'a> {
        node.next.store(ptr::null_mut(), Ordering::Relaxed);
        node.locked.store(true, Ordering::Relaxed);
        let node_ptr: *mut McsNode = node;
        let pred = self.tail.swap(node_ptr, Ordering::AcqRel);
        if !pred.is_null() {
            // SAFETY: `pred` was published by its owner via the tail swap and
            // stays alive until it observes `locked == false`, which only we
            // can set (we are its successor).
            unsafe { (*pred).next.store(node_ptr, Ordering::Release) };
            while node.locked.load(Ordering::Acquire) {
                crate::relax();
            }
        }
        McsGuard { lock: self, node }
    }

    /// Attempts to acquire the lock without waiting.
    pub fn try_lock<'a>(&'a self, node: &'a mut McsNode) -> Option<McsGuard<'a>> {
        node.next.store(ptr::null_mut(), Ordering::Relaxed);
        let node_ptr: *mut McsNode = node;
        if self
            .tail
            .compare_exchange(
                ptr::null_mut(),
                node_ptr,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            Some(McsGuard { lock: self, node })
        } else {
            None
        }
    }

    /// Runs `f` inside the critical section, managing the queue node.
    pub fn with<T>(&self, f: impl FnOnce() -> T) -> T {
        let mut node = McsNode::new();
        let _guard = self.lock(&mut node);
        f()
    }

    /// Whether some thread currently holds (or queues for) the lock.
    pub fn is_locked(&self) -> bool {
        !self.tail.load(Ordering::Relaxed).is_null()
    }
}

impl Default for McsLock {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII guard for [`McsLock`]; releases on drop.
#[derive(Debug)]
pub struct McsGuard<'a> {
    lock: &'a McsLock,
    node: &'a McsNode,
}

impl Drop for McsGuard<'_> {
    fn drop(&mut self) {
        let node_ptr = self.node as *const McsNode as *mut McsNode;
        let next = self.node.next.load(Ordering::Acquire);
        if next.is_null() {
            // No visible successor: try to swing tail back to null.
            if self
                .lock
                .tail
                .compare_exchange(
                    node_ptr,
                    ptr::null_mut(),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return;
            }
            // A successor is enqueueing; wait for its link.
            loop {
                let next = self.node.next.load(Ordering::Acquire);
                if !next.is_null() {
                    // SAFETY: successor is spinning on its own node, alive.
                    unsafe { (*next).locked.store(false, Ordering::Release) };
                    return;
                }
                crate::relax();
            }
        }
        // SAFETY: as above.
        unsafe { (*next).locked.store(false, Ordering::Release) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_thread_lock_unlock() {
        let lock = McsLock::new();
        assert!(!lock.is_locked());
        {
            let mut node = McsNode::new();
            let _g = lock.lock(&mut node);
            assert!(lock.is_locked());
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_lock_contended() {
        let lock = McsLock::new();
        let mut n1 = McsNode::new();
        let g = lock.lock(&mut n1);
        let mut n2 = McsNode::new();
        assert!(lock.try_lock(&mut n2).is_none());
        drop(g);
        let mut n3 = McsNode::new();
        assert!(lock.try_lock(&mut n3).is_some());
    }

    #[test]
    fn with_runs_exclusively() {
        let iters = crate::stress::ops(10_000);
        let lock = Arc::new(McsLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..iters {
                    lock.with(|| {
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8 * iters);
    }

    #[test]
    fn handoff_chain_of_waiters() {
        // Force a convoy and check all waiters eventually run.
        let lock = Arc::new(McsLock::new());
        let ran = Arc::new(AtomicU64::new(0));

        let mut node = McsNode::new();
        let g = lock.lock(&mut node);
        let mut handles = Vec::new();
        for _ in 0..6 {
            let lock = Arc::clone(&lock);
            let ran = Arc::clone(&ran);
            handles.push(std::thread::spawn(move || {
                lock.with(|| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }));
        }
        // Give waiters a moment to enqueue, then release the convoy head.
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(g);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ran.load(Ordering::Relaxed), 6);
    }
}
