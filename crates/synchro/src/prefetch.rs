//! Software prefetch for pointer-chasing traversals.
//!
//! List walks and skiplist level descents spend most of their time
//! stalled on the *next* node's cache line: the address is known one
//! hop before the data is needed, which is exactly the window a
//! non-faulting `prefetcht0` can hide. [`read`] issues that hint on
//! x86_64 and compiles to nothing everywhere else — including under
//! `--cfg optik_explore`, where the deterministic explorer owns the
//! interleaving and a micro-architectural hint would only blur the
//! schedule-to-outcome mapping the replay tokens pin.
//!
//! The hint is speculative and non-faulting, so it is safe to issue on
//! any pointer a traversal is about to dereference — even one a racing
//! delete is unlinking — as long as the pointer itself came from a
//! QSBR-protected load (the node's memory is still mapped for the
//! whole grace period).

/// Whether [`read`] compiles to an actual prefetch instruction on this
/// build (x86_64, outside the deterministic explorer). Off-target and
/// explorer builds pin this `false` so tests can assert the helper is
/// a no-op there.
pub const ACTIVE: bool = cfg!(all(target_arch = "x86_64", not(optik_explore)));

/// Prefetches the cache line at `p` for reading (`prefetcht0`: into all
/// cache levels). A no-op when [`ACTIVE`] is false. Null pointers are
/// architecturally safe to prefetch, but we skip them to keep the TLB
/// out of the picture and to make the probe's `PrefetchIssued` count
/// mean "useful address hinted".
#[inline(always)]
pub fn read<T>(p: *const T) {
    #[cfg(all(target_arch = "x86_64", not(optik_explore)))]
    if !p.is_null() {
        // SAFETY: prefetch is a non-faulting hint; any address, mapped
        // or not, is architecturally valid.
        unsafe {
            std::arch::x86_64::_mm_prefetch(p as *const i8, std::arch::x86_64::_MM_HINT_T0);
        }
        optik_probe::count(optik_probe::Event::PrefetchIssued);
    }
    #[cfg(not(all(target_arch = "x86_64", not(optik_explore))))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the cfg policy: active exactly on x86_64 outside the
    /// explorer. On any other target (or under `--cfg optik_explore`)
    /// the helper must report inactive — the CI cross-check for
    /// "compiles to a no-op off x86".
    #[test]
    fn active_matches_target_policy() {
        let on_target = cfg!(all(target_arch = "x86_64", not(optik_explore)));
        assert_eq!(ACTIVE, on_target);
    }

    #[test]
    fn null_and_live_pointers_are_safe() {
        read::<u64>(std::ptr::null());
        let x = 42u64;
        read(&x as *const u64);
        // Dangling (but non-null) addresses are fine too: prefetch
        // never faults.
        read(0xdead_beef_usize as *const u64);
    }
}
