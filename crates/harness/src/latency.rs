//! Per-operation latency recording (§5: per-core timestamp counter, 16K
//! samples per thread, 5/25/50/75/95-percentile boxplots).

/// Samples kept per operation kind per recorder (the paper's 16K).
pub const SAMPLES_PER_KIND: usize = 16 * 1024;

/// Operation classification used in the paper's latency plots
/// (srch/insr/delt × successful/failed, Figure 7; enq/deq, Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpKind {
    /// Search that found its key.
    SearchHit = 0,
    /// Search that did not find its key.
    SearchMiss = 1,
    /// Insert that inserted.
    InsertSuc = 2,
    /// Insert that found the key present (or no space).
    InsertFail = 3,
    /// Delete that removed its key.
    DeleteSuc = 4,
    /// Delete that did not find its key.
    DeleteFail = 5,
}

impl OpKind {
    /// All kinds, in display order.
    pub const ALL: [OpKind; 6] = [
        OpKind::SearchHit,
        OpKind::SearchMiss,
        OpKind::InsertSuc,
        OpKind::InsertFail,
        OpKind::DeleteSuc,
        OpKind::DeleteFail,
    ];

    /// Paper-style short label (srch-suc, insr-fal, ...).
    pub fn label(self) -> &'static str {
        match self {
            OpKind::SearchHit => "srch-suc",
            OpKind::SearchMiss => "srch-fal",
            OpKind::InsertSuc => "insr-suc",
            OpKind::InsertFail => "insr-fal",
            OpKind::DeleteSuc => "delt-suc",
            OpKind::DeleteFail => "delt-fal",
        }
    }
}

/// Boxplot percentiles reported by the paper (5th/25th/50th/75th/95th),
/// extended with the 99th for tail-latency tracking in the kv tiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// 5th percentile.
    pub p5: u64,
    /// 25th percentile.
    pub p25: u64,
    /// Median.
    pub p50: u64,
    /// 75th percentile.
    pub p75: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile (tail latency; not in the paper's boxplots).
    pub p99: u64,
    /// Number of samples summarized.
    pub count: usize,
}

/// Per-thread latency reservoir: a 16K-sample ring per operation kind.
///
/// Also carries per-thread operation totals: each worker files its own
/// total via [`LatencyRecorder::record_thread_ops`], and merging keeps the
/// per-thread attribution (one entry per contributing worker) instead of
/// collapsing it, so a run can report thread imbalance
/// ([`LatencyRecorder::thread_imbalance`]) alongside its percentiles.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    samples: Vec<Vec<u64>>, // one ring per OpKind
    cursor: [usize; 6],
    thread_ops: Vec<u64>, // one total per contributing thread
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self {
            samples: (0..6).map(|_| Vec::new()).collect(),
            cursor: [0; 6],
            thread_ops: Vec::new(),
        }
    }

    /// Records one measurement (in cycles) for `kind`. Once a kind's ring
    /// is full, the oldest sample is overwritten.
    #[inline]
    pub fn record(&mut self, kind: OpKind, cycles: u64) {
        let k = kind as usize;
        let ring = &mut self.samples[k];
        if ring.len() < SAMPLES_PER_KIND {
            ring.push(cycles);
        } else {
            ring[self.cursor[k]] = cycles;
            self.cursor[k] = (self.cursor[k] + 1) % SAMPLES_PER_KIND;
        }
    }

    /// Files the calling worker's total operation count (once, at the end
    /// of its run), preserving per-thread attribution across merges.
    pub fn record_thread_ops(&mut self, ops: u64) {
        self.thread_ops.push(ops);
    }

    /// Absorbs another recorder's samples and per-thread op totals
    /// (end-of-run collection).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        for k in 0..6 {
            self.samples[k].extend_from_slice(&other.samples[k]);
        }
        self.thread_ops.extend_from_slice(&other.thread_ops);
    }

    /// Per-thread operation totals, one entry per contributing worker.
    pub fn thread_ops(&self) -> &[u64] {
        &self.thread_ops
    }

    /// Thread imbalance: the busiest worker's op total over the laziest's
    /// (1.0 = perfectly fair). `None` with fewer than two workers filed.
    pub fn thread_imbalance(&self) -> Option<f64> {
        if self.thread_ops.len() < 2 {
            return None;
        }
        let max = *self.thread_ops.iter().max().expect("non-empty");
        let min = *self.thread_ops.iter().min().expect("non-empty");
        Some(max as f64 / min.max(1) as f64)
    }

    /// Number of samples recorded for `kind`.
    pub fn count(&self, kind: OpKind) -> usize {
        self.samples[kind as usize].len()
    }

    /// Boxplot percentiles for `kind`, or `None` with no samples.
    pub fn percentiles(&self, kind: OpKind) -> Option<Percentiles> {
        let mut v = self.samples[kind as usize].clone();
        if v.is_empty() {
            return None;
        }
        v.sort_unstable();
        let pick = |p: f64| {
            let idx = ((v.len() - 1) as f64 * p).round() as usize;
            v[idx]
        };
        Some(Percentiles {
            p5: pick(0.05),
            p25: pick(0.25),
            p50: pick(0.50),
            p75: pick(0.75),
            p95: pick(0.95),
            p99: pick(0.99),
            count: v.len(),
        })
    }
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_distribution() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100u64 {
            r.record(OpKind::SearchHit, i);
        }
        let p = r.percentiles(OpKind::SearchHit).unwrap();
        assert_eq!(p.count, 100);
        assert!(p.p50 == 50 || p.p50 == 51, "median of 1..=100: {}", p.p50);
        assert!(p.p5 <= 7 && p.p5 >= 4);
        assert!(p.p95 >= 94 && p.p95 <= 96);
        assert!(p.p99 >= 98 && p.p99 <= 100, "{}", p.p99);
        assert!(p.p25 < p.p50 && p.p50 < p.p75);
        assert!(p.p95 <= p.p99);
    }

    #[test]
    fn empty_kind_yields_none() {
        let r = LatencyRecorder::new();
        assert!(r.percentiles(OpKind::DeleteFail).is_none());
        assert_eq!(r.count(OpKind::DeleteFail), 0);
    }

    #[test]
    fn ring_overwrites_after_capacity() {
        let mut r = LatencyRecorder::new();
        // Fill with large values, then overwrite everything with 1s.
        for _ in 0..SAMPLES_PER_KIND {
            r.record(OpKind::InsertSuc, 1_000_000);
        }
        for _ in 0..SAMPLES_PER_KIND {
            r.record(OpKind::InsertSuc, 1);
        }
        let p = r.percentiles(OpKind::InsertSuc).unwrap();
        assert_eq!(p.count, SAMPLES_PER_KIND);
        assert_eq!(p.p95, 1, "old samples fully evicted");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(OpKind::DeleteSuc, 5);
        b.record(OpKind::DeleteSuc, 15);
        b.record(OpKind::SearchMiss, 1);
        a.merge(&b);
        assert_eq!(a.count(OpKind::DeleteSuc), 2);
        assert_eq!(a.count(OpKind::SearchMiss), 1);
        let p = a.percentiles(OpKind::DeleteSuc).unwrap();
        assert_eq!(p.p5, 5);
        assert_eq!(p.p95, 15);
    }

    #[test]
    fn merge_preserves_per_thread_attribution() {
        let mut merged = LatencyRecorder::new();
        for ops in [100u64, 400, 250] {
            let mut worker = LatencyRecorder::new();
            worker.record_thread_ops(ops);
            merged.merge(&worker);
        }
        assert_eq!(merged.thread_ops(), &[100, 400, 250]);
        assert_eq!(merged.thread_imbalance(), Some(4.0));
    }

    #[test]
    fn imbalance_needs_two_threads_and_survives_zero_ops() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.thread_imbalance(), None);
        r.record_thread_ops(50);
        assert_eq!(r.thread_imbalance(), None, "one thread has no ratio");
        r.record_thread_ops(0);
        assert_eq!(r.thread_imbalance(), Some(50.0), "zero clamps to 1");
    }

    #[test]
    fn labels_match_paper_naming() {
        assert_eq!(OpKind::SearchHit.label(), "srch-suc");
        assert_eq!(OpKind::InsertFail.label(), "insr-fal");
        assert_eq!(OpKind::ALL.len(), 6);
    }
}
