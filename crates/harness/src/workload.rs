//! Workload specification and operation generation (§5 methodology).

use crate::api::{Key, Val};
use crate::rng::FastRng;
use crate::zipf::Zipf;

/// One generated operation against a search data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Look up a key.
    Search(Key),
    /// Insert a key–value pair.
    Insert(Key, Val),
    /// Delete a key.
    Delete(Key),
}

/// Issued operation mix, in permille of issued operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Permille of issued operations that are insertions.
    pub insert_pm: u32,
    /// Permille of issued operations that are deletions.
    pub delete_pm: u32,
}

impl OpMix {
    /// Permille of issued operations that are searches.
    pub fn search_pm(&self) -> u32 {
        1000 - self.insert_pm - self.delete_pm
    }
}

/// A search-data-structure workload in the paper's parameterization.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Target steady-state element count; the structure is pre-filled to
    /// this size.
    pub initial_size: u64,
    /// Inclusive key range `[lo, hi]`. The paper keeps `hi - lo + 1 ==
    /// 2 * initial_size` so half the key space is absent at any time.
    pub key_lo: Key,
    /// See [`Workload::key_lo`].
    pub key_hi: Key,
    /// *Effective* update percentage as reported in the paper's figures
    /// (issued updates are double this; see
    /// [`Workload::issued_update_permille`]).
    pub effective_update_pct: u32,
    /// Zipfian sampler for skewed workloads (`None` = uniform).
    pub zipf: Option<Zipf>,
}

impl Workload {
    /// Builds the paper's standard workload: key range double the initial
    /// size (starting at key 1), equal insert/delete rates.
    ///
    /// # Panics
    ///
    /// Panics if `initial_size == 0` or `effective_update_pct > 50`.
    pub fn paper(initial_size: u64, effective_update_pct: u32, skewed: bool) -> Self {
        assert!(initial_size > 0, "initial size must be positive");
        assert!(
            effective_update_pct <= 50,
            "effective updates cap at 50% (issued = 2x reported)"
        );
        let key_lo = 1;
        let key_hi = 2 * initial_size;
        let zipf = skewed.then(|| Zipf::paper((key_hi - key_lo + 1) as usize));
        Self {
            initial_size,
            key_lo,
            key_hi,
            effective_update_pct,
            zipf,
        }
    }

    /// Number of keys in the range.
    pub fn range_len(&self) -> u64 {
        self.key_hi - self.key_lo + 1
    }

    /// Issued updates per mille: double the effective rate, split evenly
    /// between inserts and deletes ("we keep ... the percentages of
    /// insertions and deletions the same").
    pub fn issued_update_permille(&self) -> OpMix {
        let issued_total = 2 * self.effective_update_pct * 10; // pct -> permille
        OpMix {
            insert_pm: issued_total / 2,
            delete_pm: issued_total / 2,
        }
    }

    /// Draws a key from the configured distribution.
    #[inline]
    pub fn sample_key(&self, rng: &mut FastRng) -> Key {
        match &self.zipf {
            Some(z) => z.sample_key(rng, self.key_lo, self.key_hi),
            None => rng.range_inclusive(self.key_lo, self.key_hi),
        }
    }

    /// Draws the next operation. Values are derived from keys (`val = key`)
    /// as in the paper's microbenchmarks.
    #[inline]
    pub fn next_op(&self, rng: &mut FastRng) -> Op {
        let mix = self.issued_update_permille();
        let p = rng.next_below(1000) as u32;
        let key = self.sample_key(rng);
        if p < mix.insert_pm {
            Op::Insert(key, key)
        } else if p < mix.insert_pm + mix.delete_pm {
            Op::Delete(key)
        } else {
            Op::Search(key)
        }
    }

    /// Pre-fills a structure to `initial_size` distinct uniform keys by
    /// calling `insert` (which must return whether the key was new).
    ///
    /// Uniform *regardless of skew*: the paper initializes to a target size
    /// and lets the skewed access pattern drive steady state.
    pub fn initial_fill(&self, seed: u64, mut insert: impl FnMut(Key, Val) -> bool) {
        let mut rng = FastRng::new(seed ^ 0xF111_0F11);
        let mut inserted = 0;
        while inserted < self.initial_size {
            let k = rng.range_inclusive(self.key_lo, self.key_hi);
            if insert(k, k) {
                inserted += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_has_double_range() {
        let w = Workload::paper(1024, 20, false);
        assert_eq!(w.range_len(), 2048);
        assert_eq!(w.key_lo, 1);
        assert_eq!(w.key_hi, 2048);
    }

    #[test]
    fn issued_updates_are_double_effective() {
        let w = Workload::paper(64, 20, false);
        let mix = w.issued_update_permille();
        assert_eq!(mix.insert_pm, 200);
        assert_eq!(mix.delete_pm, 200);
        assert_eq!(mix.search_pm(), 600);
    }

    #[test]
    fn zero_update_workload_only_searches() {
        let w = Workload::paper(64, 0, false);
        let mut rng = FastRng::new(9);
        for _ in 0..1000 {
            assert!(matches!(w.next_op(&mut rng), Op::Search(_)));
        }
    }

    #[test]
    fn op_mix_matches_spec_empirically() {
        let w = Workload::paper(256, 10, false);
        let mut rng = FastRng::new(10);
        let (mut ins, mut del, mut srch) = (0u32, 0u32, 0u32);
        const N: u32 = 100_000;
        for _ in 0..N {
            match w.next_op(&mut rng) {
                Op::Insert(..) => ins += 1,
                Op::Delete(_) => del += 1,
                Op::Search(_) => srch += 1,
            }
        }
        // Expect 10% / 10% / 80% of issued ops.
        assert!((ins as f64 / N as f64 - 0.10).abs() < 0.01, "ins {ins}");
        assert!((del as f64 / N as f64 - 0.10).abs() < 0.01, "del {del}");
        assert!((srch as f64 / N as f64 - 0.80).abs() < 0.01, "srch {srch}");
    }

    #[test]
    fn keys_stay_in_range_uniform_and_skewed() {
        for skewed in [false, true] {
            let w = Workload::paper(128, 20, skewed);
            let mut rng = FastRng::new(11);
            for _ in 0..10_000 {
                let k = w.sample_key(&mut rng);
                assert!((w.key_lo..=w.key_hi).contains(&k));
            }
        }
    }

    #[test]
    fn skewed_prefers_large_keys() {
        let w = Workload::paper(512, 20, true);
        let mut rng = FastRng::new(12);
        let mid = (w.key_lo + w.key_hi) / 2;
        let mut high = 0u32;
        const N: u32 = 20_000;
        for _ in 0..N {
            if w.sample_key(&mut rng) > mid {
                high += 1;
            }
        }
        assert!(
            high as f64 / N as f64 > 0.6,
            "upper half should dominate: {high}/{N}"
        );
    }

    #[test]
    fn initial_fill_reaches_target_size() {
        let w = Workload::paper(100, 20, false);
        let mut set = std::collections::HashSet::new();
        w.initial_fill(33, |k, _| set.insert(k));
        assert_eq!(set.len(), 100);
        assert!(set.iter().all(|&k| (1..=200).contains(&k)));
    }

    #[test]
    #[should_panic(expected = "cap at 50%")]
    fn over_fifty_percent_updates_rejected() {
        let _ = Workload::paper(10, 51, false);
    }
}
