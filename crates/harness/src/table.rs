//! Minimal aligned-table / CSV output for the figure-regeneration binaries.

use std::fmt::Write as _;

/// A simple text table: header row plus data rows, printed aligned or as
/// CSV. Used by all `figN_*` binaries so their output is uniform and easy
/// to diff against EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned, human-readable table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", cell, width = widths[c]);
            }
            out.truncate(out.trim_end().len());
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths
            .iter()
            .map(|w| w + 2)
            .sum::<usize>()
            .saturating_sub(2);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders CSV (no quoting: cells are numbers and simple labels).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Prints the aligned rendering to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a Mops/s figure with sensible precision.
pub fn fmt_mops(mops: f64) -> String {
    if mops >= 100.0 {
        format!("{mops:.0}")
    } else if mops >= 10.0 {
        format!("{mops:.1}")
    } else {
        format!("{mops:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["threads", "mops"]);
        t.row(["1", "0.52"]).row(["16", "12.3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("threads"));
        assert!(lines[2].ends_with("0.52"));
        assert!(lines[3].ends_with("12.3"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1", "2", "3"]);
        assert_eq!(t.to_csv(), "a,b,c\n1,2,3\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn mops_formatting_precision() {
        assert_eq!(fmt_mops(123.4), "123");
        assert_eq!(fmt_mops(12.34), "12.3");
        assert_eq!(fmt_mops(1.234), "1.23");
        assert_eq!(fmt_mops(0.056), "0.06");
    }
}
