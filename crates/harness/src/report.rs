//! Machine-readable benchmark reports and baseline comparison.
//!
//! [`Report`] is the JSON artifact `bench_all` writes (`BENCH_<name>.json`)
//! and CI diffs against the checked-in `BENCH_baseline.json`. Schema
//! (version 2):
//!
//! ```json
//! {
//!   "schema": 2,
//!   "machine": "1-core x86-64 KVM (CI class)",
//!   "config": {"duration_ms": 100, "reps": 3, "seed": 42, "threads": [1, 2]},
//!   "meta": {"BENCH_DUR_MS": "100", "OPTIK_PURE_SPIN": "1"},
//!   "scenarios": [
//!     {
//!       "scenario": "fig9.large.harris",
//!       "group": "fig9.large",
//!       "series": "harris",
//!       "points": [
//!         {
//!           "threads": 1,
//!           "mops": 1.234,
//!           "extra": {"cas_per_validation": 1.0},
//!           "internals": {"validation_fail_per_op": 0.002},
//!           "latency_percentiles": {"srch-suc": [5, 25, 50, 75, 95, 99, 1000]}
//!         }
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! `meta` (schema 2) records the environment knobs that shaped the run
//! (`BENCH_*`, `OPTIK_PURE_SPIN`, `STRESS_SEED`), so a baseline is
//! reproducible from its own file. `internals` (schema 2) carries the
//! probe layer's per-point internal-behavior metrics. `meta`, `extra`,
//! `internals`, and `latency_percentiles` are omitted when empty; the
//! percentile tuple is `[p5, p25, p50, p75, p95, p99, count]`. Schema-1
//! reports (no meta/internals) and reports written before p99 was tracked
//! (six-entry tuples, with `p99` conservatively reported as `p95`) still
//! load.
//!
//! [`compare`] matches `(scenario, threads)` pairs between two reports and
//! flags throughput regressions beyond a fractional tolerance.

use std::collections::BTreeMap;
use std::path::Path;

use crate::driver::{Point, ScenarioReport, SweepConfig};
use crate::json::{self, Json};
use crate::latency::Percentiles;

/// Current schema version.
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema version [`Report::from_json`] still accepts (1: no
/// `meta`, no per-point `internals`).
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// The environment knobs recorded into a report's `meta` block: everything
/// `BENCH_*` plus the named non-`BENCH_` switches that shape a run.
const META_ENV_EXTRAS: [&str; 2] = ["OPTIK_PURE_SPIN", "STRESS_SEED"];

/// Collects the reproducibility-relevant environment (`BENCH_*`,
/// `OPTIK_PURE_SPIN`, `STRESS_SEED`) as sorted key/value pairs.
pub fn env_meta() -> Vec<(String, String)> {
    let mut meta: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("BENCH_") || META_ENV_EXTRAS.contains(&k.as_str()))
        .collect();
    meta.sort();
    meta
}

/// A complete benchmark report: configuration, machine class, results.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Schema version ([`SCHEMA_VERSION`] on write).
    pub schema: u64,
    /// Free-form machine-class note ("1-core x86-64 KVM", ...).
    pub machine: String,
    /// The sweep configuration the report was produced with.
    pub config: SweepConfig,
    /// Environment knobs the run was shaped by (sorted key/value pairs;
    /// see [`env_meta`]). Empty in schema-1 reports.
    pub meta: Vec<(String, String)>,
    /// One entry per swept scenario.
    pub scenarios: Vec<ScenarioReport>,
}

impl Report {
    /// Bundles sweep results into a report, capturing the current
    /// environment's knobs ([`env_meta`]) into the `meta` block.
    pub fn new(machine: &str, config: &SweepConfig, scenarios: Vec<ScenarioReport>) -> Self {
        Self {
            schema: SCHEMA_VERSION,
            machine: machine.to_string(),
            config: config.clone(),
            meta: env_meta(),
            scenarios,
        }
    }

    /// A default machine-class string: core count + OS + architecture.
    pub fn machine_class() -> String {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0);
        format!(
            "{cores}-core {} {}",
            std::env::consts::ARCH,
            std::env::consts::OS
        )
    }

    /// Serializes to the schema-1 JSON document.
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert("schema".into(), Json::Num(self.schema as f64));
        root.insert("machine".into(), Json::Str(self.machine.clone()));
        let mut cfg = BTreeMap::new();
        cfg.insert(
            "duration_ms".into(),
            Json::Num(self.config.duration.as_millis() as f64),
        );
        cfg.insert("reps".into(), Json::Num(self.config.reps as f64));
        cfg.insert("seed".into(), Json::Num(self.config.seed as f64));
        cfg.insert(
            "threads".into(),
            Json::Arr(
                self.config
                    .threads
                    .iter()
                    .map(|&t| Json::Num(t as f64))
                    .collect(),
            ),
        );
        root.insert("config".into(), Json::Obj(cfg));
        if !self.meta.is_empty() {
            root.insert(
                "meta".into(),
                Json::Obj(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            );
        }
        root.insert(
            "scenarios".into(),
            Json::Arr(self.scenarios.iter().map(scenario_to_json).collect()),
        );
        Json::Obj(root).render()
    }

    /// Parses a JSON document of any supported schema version
    /// (currently 1 or 2; see [`MIN_SCHEMA_VERSION`]).
    pub fn from_json(input: &str) -> Result<Self, ReportError> {
        let v = json::parse(input)?;
        let schema = field_u64(&v, "schema")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) {
            return Err(ReportError::Schema(format!(
                "unsupported schema version {schema} \
                 (expected {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            )));
        }
        let machine = field_str(&v, "machine")?.to_string();
        let cfg = v
            .get("config")
            .ok_or_else(|| ReportError::Schema("missing `config`".into()))?;
        let config = SweepConfig {
            threads: cfg
                .get("threads")
                .and_then(Json::as_arr)
                .ok_or_else(|| ReportError::Schema("missing `config.threads`".into()))?
                .iter()
                .map(|t| {
                    t.as_u64()
                        .map(|t| t as usize)
                        .ok_or_else(|| ReportError::Schema("bad thread count".into()))
                })
                .collect::<Result<_, _>>()?,
            duration: std::time::Duration::from_millis(field_u64(cfg, "duration_ms")?),
            reps: field_u64(cfg, "reps")? as usize,
            seed: field_u64(cfg, "seed")?,
        };
        let meta = match v.get("meta").and_then(Json::as_obj) {
            Some(m) => m
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|v| (k.clone(), v.to_string()))
                        .ok_or_else(|| ReportError::Schema("non-string `meta` value".into()))
                })
                .collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        let scenarios = v
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or_else(|| ReportError::Schema("missing `scenarios`".into()))?
            .iter()
            .map(scenario_from_json)
            .collect::<Result<_, _>>()?;
        Ok(Self {
            schema,
            machine,
            config,
            meta,
            scenarios,
        })
    }

    /// Writes the JSON document to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a report from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ReportError> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| ReportError::Io(format!("{}: {e}", path.as_ref().display())))?;
        Self::from_json(&text)
    }
}

/// What can go wrong loading a report.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// Filesystem failure.
    Io(String),
    /// Malformed JSON.
    Parse(json::ParseError),
    /// Valid JSON, wrong shape.
    Schema(String),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Io(e) => write!(f, "io error: {e}"),
            ReportError::Parse(e) => write!(f, "{e}"),
            ReportError::Schema(e) => write!(f, "schema error: {e}"),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<json::ParseError> for ReportError {
    fn from(e: json::ParseError) -> Self {
        ReportError::Parse(e)
    }
}

fn scenario_to_json(s: &ScenarioReport) -> Json {
    let mut m = BTreeMap::new();
    m.insert("scenario".into(), Json::Str(s.scenario.clone()));
    m.insert("group".into(), Json::Str(s.group.clone()));
    m.insert("series".into(), Json::Str(s.series.clone()));
    m.insert(
        "points".into(),
        Json::Arr(
            s.points
                .iter()
                .map(|p| {
                    let mut pm = BTreeMap::new();
                    pm.insert("threads".into(), Json::Num(p.threads as f64));
                    pm.insert("mops".into(), Json::Num(p.mops));
                    if !p.extra.is_empty() {
                        pm.insert(
                            "extra".into(),
                            Json::Obj(
                                p.extra
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                    .collect(),
                            ),
                        );
                    }
                    if !p.internals.is_empty() {
                        pm.insert(
                            "internals".into(),
                            Json::Obj(
                                p.internals
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                    .collect(),
                            ),
                        );
                    }
                    if !p.latency.is_empty() {
                        pm.insert(
                            "latency_percentiles".into(),
                            Json::Obj(
                                p.latency
                                    .iter()
                                    .map(|(k, q)| {
                                        (
                                            k.clone(),
                                            Json::Arr(
                                                [
                                                    q.p5,
                                                    q.p25,
                                                    q.p50,
                                                    q.p75,
                                                    q.p95,
                                                    q.p99,
                                                    q.count as u64,
                                                ]
                                                .iter()
                                                .map(|&x| Json::Num(x as f64))
                                                .collect(),
                                            ),
                                        )
                                    })
                                    .collect(),
                            ),
                        );
                    }
                    Json::Obj(pm)
                })
                .collect(),
        ),
    );
    Json::Obj(m)
}

fn scenario_from_json(v: &Json) -> Result<ScenarioReport, ReportError> {
    let points = v
        .get("points")
        .and_then(Json::as_arr)
        .ok_or_else(|| ReportError::Schema("missing `points`".into()))?
        .iter()
        .map(|p| {
            let threads = field_u64(p, "threads")? as usize;
            let mops = p
                .get("mops")
                .and_then(Json::as_f64)
                .ok_or_else(|| ReportError::Schema("missing `mops`".into()))?;
            let extra = match p.get("extra").and_then(Json::as_obj) {
                Some(m) => m
                    .iter()
                    .map(|(k, v)| {
                        v.as_f64()
                            .map(|v| (k.clone(), v))
                            .ok_or_else(|| ReportError::Schema("bad extra metric".into()))
                    })
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            };
            let internals = match p.get("internals").and_then(Json::as_obj) {
                Some(m) => m
                    .iter()
                    .map(|(k, v)| {
                        v.as_f64()
                            .map(|v| (k.clone(), v))
                            .ok_or_else(|| ReportError::Schema("bad internals metric".into()))
                    })
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            };
            let latency = match p.get("latency_percentiles").and_then(Json::as_obj) {
                Some(m) => m
                    .iter()
                    .map(|(k, v)| {
                        let q: Vec<u64> = v
                            .as_arr()
                            .unwrap_or(&[])
                            .iter()
                            .filter_map(Json::as_u64)
                            .collect();
                        // 7 entries since p99 was added; 6 in legacy
                        // reports (count last in both).
                        if q.len() != 7 && q.len() != 6 {
                            return Err(ReportError::Schema(format!(
                                "latency tuple for `{k}` must have 6 or 7 entries"
                            )));
                        }
                        Ok((
                            k.clone(),
                            Percentiles {
                                p5: q[0],
                                p25: q[1],
                                p50: q[2],
                                p75: q[3],
                                p95: q[4],
                                p99: if q.len() == 7 { q[5] } else { q[4] },
                                count: q[q.len() - 1] as usize,
                            },
                        ))
                    })
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            };
            Ok(Point {
                threads,
                mops,
                extra,
                latency,
                internals,
            })
        })
        .collect::<Result<_, ReportError>>()?;
    Ok(ScenarioReport {
        scenario: field_str(v, "scenario")?.to_string(),
        group: field_str(v, "group")?.to_string(),
        series: field_str(v, "series")?.to_string(),
        points,
    })
}

fn field_u64(v: &Json, key: &str) -> Result<u64, ReportError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ReportError::Schema(format!("missing or non-integer `{key}`")))
}

fn field_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, ReportError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ReportError::Schema(format!("missing `{key}`")))
}

/// Throughput delta for one `(scenario, threads)` pair present in both
/// reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Scenario name.
    pub scenario: String,
    /// Thread count.
    pub threads: usize,
    /// Baseline throughput (Mops/s).
    pub baseline_mops: f64,
    /// Current throughput (Mops/s).
    pub current_mops: f64,
}

impl Delta {
    /// `current / baseline` (∞-safe: a zero baseline compares as 1.0,
    /// nothing meaningful can be said about it).
    pub fn ratio(&self) -> f64 {
        if self.baseline_mops <= 0.0 {
            1.0
        } else {
            self.current_mops / self.baseline_mops
        }
    }

    /// Whether this pair regressed by more than `tolerance` (fractional:
    /// `0.25` = "fail below 75% of baseline").
    pub fn is_regression(&self, tolerance: f64) -> bool {
        self.ratio() < 1.0 - tolerance
    }
}

/// Result of matching two reports point-by-point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Pairs present in both reports.
    pub deltas: Vec<Delta>,
    /// Scenario names in the baseline with no counterpart in the current
    /// report (coverage shrank — CI should treat this as suspicious).
    pub missing_in_current: Vec<String>,
    /// Scenario names only the current report has (new scenarios; fine).
    pub new_in_current: Vec<String>,
}

impl Comparison {
    /// Deltas regressing beyond `tolerance` (see [`Delta::is_regression`]).
    pub fn regressions(&self, tolerance: f64) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| d.is_regression(tolerance))
            .collect()
    }

    /// Geometric-mean throughput ratio over all matched pairs (1.0 if no
    /// pairs matched).
    pub fn geomean_ratio(&self) -> f64 {
        if self.deltas.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.deltas.iter().map(|d| d.ratio().max(1e-12).ln()).sum();
        (log_sum / self.deltas.len() as f64).exp()
    }
}

/// Matches `(scenario, threads)` pairs of `current` against `baseline`.
pub fn compare(current: &Report, baseline: &Report) -> Comparison {
    let mut cmp = Comparison::default();
    for base in &baseline.scenarios {
        match current
            .scenarios
            .iter()
            .find(|s| s.scenario == base.scenario)
        {
            None => cmp.missing_in_current.push(base.scenario.clone()),
            Some(cur) => {
                for bp in &base.points {
                    if let Some(cp) = cur.at(bp.threads) {
                        cmp.deltas.push(Delta {
                            scenario: base.scenario.clone(),
                            threads: bp.threads,
                            baseline_mops: bp.mops,
                            current_mops: cp.mops,
                        });
                    }
                }
            }
        }
    }
    for cur in &current.scenarios {
        if !baseline
            .scenarios
            .iter()
            .any(|s| s.scenario == cur.scenario)
        {
            cmp.new_in_current.push(cur.scenario.clone());
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_report() -> Report {
        let cfg = SweepConfig {
            threads: vec![1, 2],
            duration: Duration::from_millis(100),
            reps: 3,
            seed: 42,
        };
        let scen = |name: &str, mops: &[f64]| ScenarioReport {
            scenario: name.to_string(),
            group: name.rsplit_once('.').unwrap().0.to_string(),
            series: name.rsplit_once('.').unwrap().1.to_string(),
            points: mops
                .iter()
                .zip([1usize, 2])
                .map(|(&m, t)| Point {
                    threads: t,
                    mops: m,
                    extra: vec![("cas".into(), 1.25)],
                    internals: vec![
                        ("thread_imbalance".into(), 1.5),
                        ("validation_fail_per_op".into(), 0.002),
                    ],
                    latency: vec![(
                        "srch-suc".into(),
                        Percentiles {
                            p5: 5,
                            p25: 25,
                            p50: 50,
                            p75: 75,
                            p95: 95,
                            p99: 99,
                            count: 1000,
                        },
                    )],
                })
                .collect(),
        };
        Report::new(
            "test-box",
            &cfg,
            vec![
                scen("fig9.large.harris", &[1.5, 2.5]),
                scen("fig12.stable.ms-lf", &[3.0, 4.0]),
            ],
        )
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let r = sample_report();
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn roundtrip_through_comparator_is_clean() {
        // The acceptance criterion: serialize → load → compare against
        // itself must show zero regressions at any tolerance.
        let r = sample_report();
        let loaded = Report::from_json(&r.to_json()).unwrap();
        let cmp = compare(&loaded, &r);
        assert_eq!(cmp.deltas.len(), 4, "2 scenarios × 2 thread counts");
        assert!(cmp.regressions(0.0).is_empty());
        assert!(cmp.missing_in_current.is_empty());
        assert!(cmp.new_in_current.is_empty());
        assert!((cmp.geomean_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_flags_regressions_beyond_tolerance() {
        let base = sample_report();
        let mut cur = sample_report();
        // 30% regression at one point, 10% improvement at another.
        cur.scenarios[0].points[0].mops = 1.5 * 0.7;
        cur.scenarios[1].points[1].mops = 4.0 * 1.1;
        let cmp = compare(&cur, &base);
        let reg = cmp.regressions(0.25);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].scenario, "fig9.large.harris");
        assert_eq!(reg[0].threads, 1);
        // Tightening the tolerance catches it, loosening does not.
        assert!(cmp.regressions(0.35).is_empty());
        assert_eq!(cmp.regressions(0.05).len(), 1);
    }

    #[test]
    fn comparison_reports_coverage_changes() {
        let base = sample_report();
        let mut cur = sample_report();
        cur.scenarios.remove(0);
        cur.scenarios.push(ScenarioReport {
            scenario: "fig5.new".into(),
            group: "fig5".into(),
            series: "new".into(),
            points: vec![],
        });
        let cmp = compare(&cur, &base);
        assert_eq!(cmp.missing_in_current, vec!["fig9.large.harris"]);
        assert_eq!(cmp.new_in_current, vec!["fig5.new"]);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let source = sample_report().to_json();
        let text = source.replace("\"schema\": 2", "\"schema\": 99");
        assert_ne!(text, source, "replacement must have applied");
        assert!(matches!(
            Report::from_json(&text),
            Err(ReportError::Schema(_))
        ));
    }

    #[test]
    fn schema_one_documents_still_load() {
        // A legacy report: schema 1, no meta, no internals.
        let mut legacy = sample_report();
        legacy.meta.clear();
        for s in &mut legacy.scenarios {
            for p in &mut s.points {
                p.internals.clear();
            }
        }
        let text = legacy.to_json().replace("\"schema\": 2", "\"schema\": 1");
        let back = Report::from_json(&text).unwrap();
        assert_eq!(back.schema, 1);
        assert!(back.meta.is_empty());
        assert_eq!(back.scenarios, legacy.scenarios);
    }

    #[test]
    fn meta_block_roundtrips_and_captures_bench_env() {
        // Uniquely-named knob: safe against parallel tests reading env.
        std::env::set_var("BENCH_META_PROBE_TEST", "on");
        let r = sample_report();
        std::env::remove_var("BENCH_META_PROBE_TEST");
        assert!(
            r.meta
                .iter()
                .any(|(k, v)| k == "BENCH_META_PROBE_TEST" && v == "on"),
            "Report::new records BENCH_* knobs: {:?}",
            r.meta
        );
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back.meta, r.meta);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(matches!(
            Report::from_json("{not json"),
            Err(ReportError::Parse(_))
        ));
        assert!(matches!(
            Report::from_json("{\"schema\": 1}"),
            Err(ReportError::Schema(_))
        ));
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("optik_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let r = sample_report();
        r.save(&path).unwrap();
        assert_eq!(Report::load(&path).unwrap(), r);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(Report::load(&path), Err(ReportError::Io(_))));
    }

    #[test]
    fn legacy_six_entry_latency_tuples_still_load() {
        let r = sample_report();
        // Rewrite the 7-entry tuple as the pre-p99 6-entry form.
        let text = r
            .to_json()
            .replace("[5, 25, 50, 75, 95, 99, 1000]", "[5, 25, 50, 75, 95, 1000]");
        assert_ne!(text, r.to_json(), "replacement must have applied");
        let back = Report::from_json(&text).unwrap();
        let p = &back.scenarios[0].points[0].latency[0].1;
        assert_eq!(p.p95, 95);
        assert_eq!(p.p99, 95, "legacy p99 falls back to p95");
        assert_eq!(p.count, 1000);
    }

    #[test]
    fn zero_baseline_is_not_a_regression() {
        let d = Delta {
            scenario: "x.y".into(),
            threads: 1,
            baseline_mops: 0.0,
            current_mops: 0.0,
        };
        assert!(!d.is_regression(0.25));
        assert_eq!(d.ratio(), 1.0);
    }
}
