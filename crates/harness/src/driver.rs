//! The unified sweep driver: thread sweeps × repetitions → medians.
//!
//! This is the loop the paper's §5 methodology prescribes (and that every
//! `fig*` binary used to hand-roll): for each thread count, run `reps`
//! measurement windows with per-repetition seeds and report the **median**
//! throughput, the median of each extra metric, and (optionally, at one
//! designated thread count) merged latency percentiles.
//!
//! The core loop ([`sweep_with`]) is deliberately decoupled from wall-clock
//! measurement: it takes a closure from [`RunSpec`] to [`Measurement`], so
//! unit tests drive it with a deterministic fake clock.

use std::time::Duration;

use crate::latency::{OpKind, Percentiles};
use crate::scenario::{Measurement, RunSpec, Scenario};
use crate::stats;

/// Sweep configuration shared by every benchmark binary.
///
/// Read from the environment by [`SweepConfig::from_env`]:
///
/// | variable         | meaning                               | default |
/// |------------------|---------------------------------------|---------|
/// | `BENCH_THREADS`  | comma-separated thread counts         | `1,2,4,8,...,2×cores` |
/// | `BENCH_DUR_MS`   | measurement window per point (ms)     | `300`   |
/// | `BENCH_REPS`     | repetitions per point (median taken)  | `3`     |
/// | `BENCH_SEED`     | workload RNG seed                     | `42`    |
///
/// The paper uses 5 s × 11 repetitions; set `BENCH_DUR_MS=5000
/// BENCH_REPS=11` to match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Measurement window per data point.
    pub duration: Duration,
    /// Repetitions per data point (median reported).
    pub reps: usize,
    /// Workload seed (repetition `r` uses `seed + r`).
    pub seed: u64,
}

impl SweepConfig {
    /// Reads the configuration from the environment (see type docs).
    ///
    /// # Panics
    ///
    /// Panics if `BENCH_THREADS` is set but yields no valid thread count —
    /// a silent empty sweep would make every downstream consumer (tables,
    /// JSON reports, the CI regression gate) trivially green while
    /// measuring nothing.
    pub fn from_env() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
        let threads = match std::env::var("BENCH_THREADS") {
            Ok(s) => {
                let parsed: Vec<usize> = s
                    .split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .filter(|&t| t > 0)
                    .collect();
                assert!(
                    !parsed.is_empty(),
                    "BENCH_THREADS={s:?} parsed to an empty thread sweep"
                );
                parsed
            }
            Err(_) => {
                let mut v = vec![1, 2, 4, 8, 16, 24, 32, 48, 64];
                v.retain(|&t| t <= 2 * cores);
                if !v.contains(&cores) {
                    v.push(cores);
                }
                if !v.contains(&(2 * cores)) {
                    v.push(2 * cores);
                }
                v.sort_unstable();
                v.dedup();
                v
            }
        };
        let duration = Duration::from_millis(
            std::env::var("BENCH_DUR_MS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(300),
        );
        let reps = std::env::var("BENCH_REPS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(3)
            .max(1);
        let seed = std::env::var("BENCH_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        Self {
            threads,
            duration,
            reps,
            seed,
        }
    }

    /// The configured thread count closest to the paper's latency plots
    /// (~10 threads) — where latency distributions are recorded.
    pub fn latency_threads(&self) -> usize {
        self.threads
            .iter()
            .copied()
            .min_by_key(|&t| t.abs_diff(10))
            .unwrap_or(10)
    }
}

/// One data point of a scenario sweep: the median over repetitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Worker thread count.
    pub threads: usize,
    /// Median throughput over the repetitions, in Mops/s.
    pub mops: f64,
    /// Median of each extra metric over the repetitions.
    pub extra: Vec<(String, f64)>,
    /// Latency boxplots merged across repetitions (only at the designated
    /// latency thread count), keyed by [`OpKind::label`].
    pub latency: Vec<(String, Percentiles)>,
    /// Median internal-behavior metrics over the repetitions: probe-layer
    /// rates (validation-failure rate, retry percentiles, magazine hit
    /// rate — empty unless built with `--features probe`) plus the
    /// workers' thread-imbalance ratio. Keyed like `extra`.
    pub internals: Vec<(String, f64)>,
}

/// A completed sweep of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (`family.group.series`).
    pub scenario: String,
    /// Group (table identity).
    pub group: String,
    /// Series (column label).
    pub series: String,
    /// One point per configured thread count, in sweep order.
    pub points: Vec<Point>,
}

impl ScenarioReport {
    /// The point measured at `threads`, if the sweep covered it.
    pub fn at(&self, threads: usize) -> Option<&Point> {
        self.points.iter().find(|p| p.threads == threads)
    }
}

/// Runs the sweep/rep/median loop against an arbitrary measurement source.
///
/// For every thread count in `cfg.threads`, `measure` is called `cfg.reps`
/// times with per-repetition seeds `cfg.seed + rep`; the reported point
/// carries the median Mops/s and the median of every extra metric.
/// `record_latency` is requested only when `threads ==
/// latency_at.unwrap_or(never)`, and the latency samples of all repetitions
/// at that point are merged.
///
/// This is the deterministic core: `measure` decides what "time" means.
pub fn sweep_with(
    cfg: &SweepConfig,
    latency_at: Option<usize>,
    mut measure: impl FnMut(&RunSpec) -> Measurement,
) -> Vec<Point> {
    let mut points = Vec::with_capacity(cfg.threads.len());
    for &threads in &cfg.threads {
        let record_latency = latency_at == Some(threads);
        let mut mops = Vec::with_capacity(cfg.reps);
        let mut extra_samples: Vec<(String, Vec<f64>)> = Vec::new();
        let mut internal_samples: Vec<(String, Vec<f64>)> = Vec::new();
        let push_sample = |samples: &mut Vec<(String, Vec<f64>)>, k: &str, v: f64| match samples
            .iter_mut()
            .find(|(ek, _)| ek == k)
        {
            Some((_, vs)) => vs.push(v),
            None => samples.push((k.to_string(), vec![v])),
        };
        let mut latency = crate::latency::LatencyRecorder::new();
        for rep in 0..cfg.reps {
            let spec = RunSpec {
                threads,
                duration: cfg.duration,
                seed: cfg.seed + rep as u64,
                record_latency,
            };
            // Probe delta around exactly the measured window: everything
            // the rep's workers count lands in this rep's internals (all
            // zeros — hence no internals — without `--features probe`).
            let probe_before = optik_probe::Snapshot::take();
            let m = measure(&spec);
            let probe_delta = optik_probe::Snapshot::take().delta_since(&probe_before);
            mops.push(m.mops());
            for (k, v) in &m.extra {
                push_sample(&mut extra_samples, k, *v);
            }
            for (k, v) in probe_delta.metrics(m.ops) {
                push_sample(&mut internal_samples, &k, v);
            }
            if let Some(ratio) = m.latency.thread_imbalance() {
                push_sample(&mut internal_samples, "thread_imbalance", ratio);
            }
            if record_latency {
                latency.merge(&m.latency);
            }
        }
        let extra = extra_samples
            .into_iter()
            .map(|(k, vs)| (k, stats::median(&vs)))
            .collect();
        let internals = internal_samples
            .into_iter()
            .map(|(k, vs)| (k, stats::median(&vs)))
            .collect();
        let latency = OpKind::ALL
            .iter()
            .filter_map(|&k| latency.percentiles(k).map(|p| (k.label().to_string(), p)))
            .collect();
        points.push(Point {
            threads,
            mops: stats::median(&mops),
            extra,
            latency,
            internals,
        });
    }
    points
}

/// Sweeps one scenario with real measurement windows.
pub fn run_scenario(
    scenario: &Scenario,
    cfg: &SweepConfig,
    latency_at: Option<usize>,
) -> ScenarioReport {
    let points = sweep_with(cfg, latency_at, |spec| scenario.run(spec));
    ScenarioReport {
        scenario: scenario.name().to_string(),
        group: scenario.group().to_string(),
        series: scenario.series().to_string(),
        points,
    }
}

/// One data point of an interleaved A/B comparison (see [`ab_sweep_with`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AbPoint {
    /// Worker thread count.
    pub threads: usize,
    /// Median throughput of the left scenario over all pairs, in Mops/s.
    pub left_mops: f64,
    /// Median throughput of the right scenario over all pairs, in Mops/s.
    pub right_mops: f64,
    /// Median of the per-pair `right / left` throughput ratios. This is
    /// the headline number: each ratio compares two back-to-back runs, so
    /// slow drift (thermal, cache residency, background load) cancels
    /// instead of biasing one whole sweep.
    pub ratio: f64,
    /// Number of pairs measured (= `cfg.reps`).
    pub pairs: usize,
}

/// Interleaved A/B core: for each thread count, run `cfg.reps` *pairs*
/// back to back — left, right, left, right, … — with per-pair seeds
/// `cfg.seed + pair`, and report the median of the per-pair `right/left`
/// throughput ratios (plus the median absolute throughputs).
///
/// Like [`sweep_with`], the closures decide what "time" means, so unit
/// tests drive this with a fake clock.
pub fn ab_sweep_with(
    cfg: &SweepConfig,
    mut left: impl FnMut(&RunSpec) -> Measurement,
    mut right: impl FnMut(&RunSpec) -> Measurement,
) -> Vec<AbPoint> {
    let mut points = Vec::with_capacity(cfg.threads.len());
    for &threads in &cfg.threads {
        let mut lm = Vec::with_capacity(cfg.reps);
        let mut rm = Vec::with_capacity(cfg.reps);
        let mut ratios = Vec::with_capacity(cfg.reps);
        for pair in 0..cfg.reps {
            let spec = RunSpec {
                threads,
                duration: cfg.duration,
                seed: cfg.seed + pair as u64,
                record_latency: false,
            };
            let l = left(&spec).mops();
            let r = right(&spec).mops();
            lm.push(l);
            rm.push(r);
            ratios.push(r / l.max(1e-12));
        }
        points.push(AbPoint {
            threads,
            left_mops: stats::median(&lm),
            right_mops: stats::median(&rm),
            ratio: stats::median(&ratios),
            pairs: cfg.reps,
        });
    }
    points
}

/// [`ab_sweep_with`] over two real scenarios.
pub fn run_ab(left: &Scenario, right: &Scenario, cfg: &SweepConfig) -> Vec<AbPoint> {
    ab_sweep_with(cfg, |spec| left.run(spec), |spec| right.run(spec))
}

/// Sweeps a batch of scenarios, invoking `progress` after each finishes
/// (for streaming table output).
pub fn run_scenarios(
    scenarios: &[&Scenario],
    cfg: &SweepConfig,
    latency_at: Option<usize>,
    mut progress: impl FnMut(&ScenarioReport),
) -> Vec<ScenarioReport> {
    let mut out = Vec::with_capacity(scenarios.len());
    for s in scenarios {
        let r = run_scenario(s, cfg, latency_at);
        progress(&r);
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threads: Vec<usize>, reps: usize) -> SweepConfig {
        SweepConfig {
            threads,
            duration: Duration::from_millis(100),
            reps,
            seed: 40,
        }
    }

    /// A fake clock: every "measurement" completes instantly with a
    /// deterministic op count derived from (threads, seed).
    fn fake_measure(spec: &RunSpec) -> Measurement {
        // mops = threads + rep (rep = seed - 40): medians become exact.
        let rep = spec.seed - 40;
        let mops = spec.threads as u64 + rep;
        Measurement::from_ops(mops * 1_000_000, Duration::from_secs(1))
            .with_extra("casper", rep as f64)
    }

    #[test]
    fn median_of_reps_is_reported_per_thread_count() {
        // reps 0..5 → mops = threads + {0,1,2,3,4}; median = threads + 2.
        let points = sweep_with(&cfg(vec![1, 4], 5), None, fake_measure);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].threads, 1);
        assert!((points[0].mops - 3.0).abs() < 1e-9);
        assert_eq!(points[1].threads, 4);
        assert!((points[1].mops - 6.0).abs() < 1e-9);
        // Extra metrics get the same median treatment: median rep index = 2.
        assert_eq!(points[0].extra, vec![("casper".to_string(), 2.0)]);
    }

    #[test]
    fn per_rep_seeds_are_distinct_and_documented() {
        let mut seeds = Vec::new();
        let _ = sweep_with(&cfg(vec![2], 3), None, |spec| {
            seeds.push(spec.seed);
            fake_measure(spec)
        });
        assert_eq!(seeds, vec![40, 41, 42], "seed + rep, per the docs");
    }

    #[test]
    fn latency_only_recorded_at_designated_point() {
        let mut asked = Vec::new();
        let _ = sweep_with(&cfg(vec![1, 2, 4], 2), Some(2), |spec| {
            asked.push((spec.threads, spec.record_latency));
            let mut m = fake_measure(spec);
            if spec.record_latency {
                m.latency.record(OpKind::SearchHit, 100);
            }
            m
        });
        assert!(
            asked.iter().all(|&(t, lat)| lat == (t == 2)),
            "latency requested exactly at 2 threads: {asked:?}"
        );
    }

    #[test]
    fn latency_percentiles_surface_in_the_point() {
        let points = sweep_with(&cfg(vec![2], 3), Some(2), |spec| {
            let mut m = fake_measure(spec);
            for c in [10, 20, 30] {
                m.latency.record(OpKind::InsertSuc, c);
            }
            m
        });
        let (label, p) = &points[0].latency[0];
        assert_eq!(label, "insr-suc");
        assert_eq!(p.count, 9, "three reps merged");
        assert_eq!(p.p50, 20);
    }

    #[test]
    fn single_rep_median_is_identity() {
        let points = sweep_with(&cfg(vec![8], 1), None, fake_measure);
        assert!((points[0].mops - 8.0).abs() < 1e-9);
    }

    #[test]
    fn latency_threads_picks_closest_to_ten() {
        let c = cfg(vec![1, 2, 4, 8, 16], 1);
        assert_eq!(c.latency_threads(), 8);
        let c = cfg(vec![1, 12, 64], 1);
        assert_eq!(c.latency_threads(), 12);
    }

    #[test]
    fn ab_sweep_interleaves_pairs_and_reports_median_ratio() {
        // Record the exact execution order: the whole point of the A/B
        // mode is that left/right alternate within each pair.
        let order = std::cell::RefCell::new(Vec::new());
        let points = ab_sweep_with(
            &cfg(vec![2], 3),
            |spec| {
                order.borrow_mut().push(('L', spec.seed));
                Measurement::from_ops(2_000_000, Duration::from_secs(1))
            },
            |spec| {
                order.borrow_mut().push(('R', spec.seed));
                // rep = seed - 40: ratios are {1.5, 2.0, 2.5}; median 2.0.
                let rep = spec.seed - 40;
                Measurement::from_ops(3_000_000 + rep * 1_000_000, Duration::from_secs(1))
            },
        );
        assert_eq!(
            order.into_inner(),
            vec![
                ('L', 40),
                ('R', 40),
                ('L', 41),
                ('R', 41),
                ('L', 42),
                ('R', 42)
            ],
            "pairs run back to back with shared per-pair seeds"
        );
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].pairs, 3);
        assert!((points[0].left_mops - 2.0).abs() < 1e-9);
        assert!((points[0].right_mops - 4.0).abs() < 1e-9);
        assert!(
            (points[0].ratio - 2.0).abs() < 1e-9,
            "median of per-pair ratios"
        );
    }

    #[test]
    fn default_config_is_sane() {
        let c = SweepConfig::from_env();
        assert!(!c.threads.is_empty());
        assert!(c.reps >= 1);
        assert!(c.duration.as_millis() > 0);
    }
}
