//! A small linearizability checker for bounded concurrent histories.
//!
//! The concurrent structures in this workspace claim linearizability (§2 of
//! the paper). Full-history checking is NP-hard, but for the bounded
//! histories our stress tiers produce a Wing–Gong style search decides
//! quickly, as long as the sequential specification has a small state:
//!
//! - [`SetSpec`] — operations on a *single key* collapse the set spec to a
//!   two-state machine (`absent`/`present`);
//! - [`FifoSpec`] — queue histories with distinct values; the state is the
//!   queue content;
//! - [`LifoSpec`] — the stack analogue;
//! - [`MapSpec`] / [`TtlMapSpec`] — value-carrying single-key map
//!   histories, the TTL variant additionally replaying fake-clock
//!   advances so expiry is an ordered event in the history;
//! - [`RangeMapSpec`] — a small multi-key machine whose `Range` op must
//!   observe a single point in time.
//!
//! Record operations with [`HistoryRecorder`] (one per thread, merged
//! afterwards) and decide with [`check`]. The single-key set entry points
//! ([`Recorder`], [`check_history`]) predate the generic checker and remain
//! as thin wrappers.

use std::collections::HashSet;
use std::hash::Hash;

/// A sequential specification: a deterministic state machine whose
/// transitions decide which outcome-annotated operations are legal.
pub trait SeqSpec {
    /// Outcome-annotated operation type.
    type Op: Copy;
    /// Machine state. Kept small — the checker memoizes on it.
    type State: Clone + Eq + Hash;
    /// Initial state.
    fn initial(&self) -> Self::State;
    /// Applies `op` to `state`: the successor state, or `None` if the
    /// recorded outcome is impossible in that state.
    fn apply(&self, state: &Self::State, op: Self::Op) -> Option<Self::State>;
}

/// One timed operation: invocation and response instants from a shared
/// monotonic clock, plus the observed outcome.
#[derive(Debug, Clone, Copy)]
pub struct Timed<O> {
    /// Invocation timestamp.
    pub invoke: u64,
    /// Response timestamp (`>= invoke`).
    pub response: u64,
    /// The operation and its outcome.
    pub op: O,
}

/// Per-thread recorder producing [`Timed`] operations from the shared
/// cycle counter.
#[derive(Debug)]
pub struct HistoryRecorder<O> {
    ops: Vec<Timed<O>>,
}

impl<O> Default for HistoryRecorder<O> {
    fn default() -> Self {
        Self { ops: Vec::new() }
    }
}

impl<O> HistoryRecorder<O> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` with [`synchro::cycles::now`] and records `to_op` of its
    /// outcome.
    pub fn record<R>(&mut self, f: impl FnOnce() -> R, to_op: impl FnOnce(R) -> O) {
        let invoke = synchro::cycles::now();
        let outcome = f();
        let response = synchro::cycles::now();
        self.ops.push(Timed {
            invoke,
            response,
            op: to_op(outcome),
        });
    }

    /// Consumes the recorder.
    pub fn into_ops(self) -> Vec<Timed<O>> {
        self.ops
    }
}

/// Decides whether `history` (ops from all threads, any order) is
/// linearizable against `spec`.
///
/// Returns `true` iff some permutation of the operations (a) respects the
/// real-time partial order (an op that responded before another was
/// invoked must precede it) and (b) is legal for the specification.
///
/// # Panics
///
/// Panics on histories longer than 64 operations (the search carries `u64`
/// done-masks); split longer histories into windows at the caller.
pub fn check<S: SeqSpec>(spec: &S, history: &[Timed<S::Op>]) -> bool {
    let n = history.len();
    if n == 0 {
        return true;
    }
    assert!(n <= 64, "check supports up to 64 operations, got {n}");
    let mut seen: HashSet<(u64, S::State)> = HashSet::new();
    dfs(spec, history, 0, spec.initial(), &mut seen)
}

fn dfs<S: SeqSpec>(
    spec: &S,
    ops: &[Timed<S::Op>],
    done: u64,
    state: S::State,
    seen: &mut HashSet<(u64, S::State)>,
) -> bool {
    if done.count_ones() as usize == ops.len() {
        return true;
    }
    if !seen.insert((done, state.clone())) {
        return false; // already proven a dead end
    }
    // An op may linearize next iff no *other* pending op responded before
    // it was invoked (real-time order) — i.e. it is minimal among pending.
    let min_response = ops
        .iter()
        .enumerate()
        .filter(|(i, _)| done & (1 << i) == 0)
        .map(|(_, o)| o.response)
        .min()
        .expect("pending op exists");
    for (i, o) in ops.iter().enumerate() {
        if done & (1 << i) != 0 || o.invoke > min_response {
            continue;
        }
        if let Some(next) = spec.apply(&state, o.op) {
            if dfs(spec, ops, done | (1 << i), next, seen) {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Single-key set specification (the original checker).
// ---------------------------------------------------------------------------

/// Outcome-annotated operation on one key of a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `insert` returning whether it inserted.
    Insert(bool),
    /// `delete` returning whether it removed.
    Delete(bool),
    /// `search` returning whether it found the key.
    Search(bool),
}

/// The two-state single-key set machine (`absent` ↔ `present`).
#[derive(Debug, Clone, Copy)]
pub struct SetSpec {
    /// Whether the key is present before the history starts.
    pub initially_present: bool,
}

impl SeqSpec for SetSpec {
    type Op = SetOp;
    type State = bool;

    fn initial(&self) -> bool {
        self.initially_present
    }

    fn apply(&self, &present: &bool, op: SetOp) -> Option<bool> {
        match op {
            SetOp::Insert(true) => (!present).then_some(true),
            SetOp::Insert(false) => present.then_some(true),
            SetOp::Delete(true) => present.then_some(false),
            SetOp::Delete(false) => (!present).then_some(false),
            SetOp::Search(found) => (found == present).then_some(present),
        }
    }
}

/// A timed single-key set operation (alias kept for the original API).
pub type TimedOp = Timed<SetOp>;

/// Per-thread recorder for single-key set histories.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: HistoryRecorder<SetOp>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` with [`synchro::cycles::now`] and records its outcome.
    pub fn record(&mut self, make_op: impl FnOnce(bool) -> SetOp, f: impl FnOnce() -> bool) {
        self.inner.record(f, make_op);
    }

    /// Consumes the recorder.
    pub fn into_ops(self) -> Vec<TimedOp> {
        self.inner.into_ops()
    }
}

/// Decides whether a single-key set history is linearizable starting from
/// `initially_present`. See [`check`].
///
/// # Panics
///
/// Panics on histories longer than 64 operations.
pub fn check_history(history: &[TimedOp], initially_present: bool) -> bool {
    if history.len() > 64 {
        // Preserve the original error text relied upon by callers/tests.
        panic!(
            "check_history supports up to 64 operations, got {}",
            history.len()
        );
    }
    check(&SetSpec { initially_present }, history)
}

// ---------------------------------------------------------------------------
// Queue (FIFO) and stack (LIFO) specifications.
// ---------------------------------------------------------------------------

/// Outcome-annotated queue operation. Use distinct enqueue values within a
/// history — duplicates blow up the search space without adding coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOp {
    /// `enqueue(v)` (always succeeds).
    Enqueue(u64),
    /// `dequeue()` returning the dequeued element, or `None` when empty.
    Dequeue(Option<u64>),
}

/// FIFO queue specification: the state is the queue content (front first).
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoSpec;

impl SeqSpec for FifoSpec {
    type Op = QueueOp;
    type State = Vec<u64>;

    fn initial(&self) -> Vec<u64> {
        Vec::new()
    }

    fn apply(&self, state: &Vec<u64>, op: QueueOp) -> Option<Vec<u64>> {
        match op {
            QueueOp::Enqueue(v) => {
                let mut s = state.clone();
                s.push(v);
                Some(s)
            }
            QueueOp::Dequeue(None) => state.is_empty().then(Vec::new),
            QueueOp::Dequeue(Some(v)) => {
                if state.first() == Some(&v) {
                    Some(state[1..].to_vec())
                } else {
                    None
                }
            }
        }
    }
}

/// Outcome-annotated stack operation (distinct push values, as for
/// [`QueueOp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackOp {
    /// `push(v)` (always succeeds).
    Push(u64),
    /// `pop()` returning the popped element, or `None` when empty.
    Pop(Option<u64>),
}

/// LIFO stack specification: the state is the stack content (bottom first).
#[derive(Debug, Clone, Copy, Default)]
pub struct LifoSpec;

impl SeqSpec for LifoSpec {
    type Op = StackOp;
    type State = Vec<u64>;

    fn initial(&self) -> Vec<u64> {
        Vec::new()
    }

    fn apply(&self, state: &Vec<u64>, op: StackOp) -> Option<Vec<u64>> {
        match op {
            StackOp::Push(v) => {
                let mut s = state.clone();
                s.push(v);
                Some(s)
            }
            StackOp::Pop(None) => state.is_empty().then(Vec::new),
            StackOp::Pop(Some(v)) => {
                if state.last() == Some(&v) {
                    Some(state[..state.len() - 1].to_vec())
                } else {
                    None
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Single-key map (upsert) specification.
// ---------------------------------------------------------------------------

/// Outcome-annotated operation on one key of a map
/// ([`crate::api::ConcurrentMap`] semantics). Unlike [`SetOp`], outcomes
/// carry the observed *values*, so the checker catches torn reads and lost
/// updates, not just presence errors. Use distinct put values within a
/// history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOp {
    /// `get` returning the observed value (`None` = absent).
    Get(Option<u64>),
    /// `put(new)` returning the previous value (`None` = fresh insert).
    Put(u64, Option<u64>),
    /// `remove` returning the removed value (`None` = absent).
    Remove(Option<u64>),
}

/// The single-key map machine: the state is the key's current binding.
#[derive(Debug, Clone, Copy, Default)]
pub struct MapSpec {
    /// The key's binding before the history starts (`None` = absent).
    pub initial: Option<u64>,
}

impl SeqSpec for MapSpec {
    type Op = MapOp;
    type State = Option<u64>;

    fn initial(&self) -> Option<u64> {
        self.initial
    }

    fn apply(&self, &state: &Option<u64>, op: MapOp) -> Option<Option<u64>> {
        match op {
            MapOp::Get(seen) => (seen == state).then_some(state),
            MapOp::Put(new, prev) => (prev == state).then_some(Some(new)),
            MapOp::Remove(removed) => (removed == state).then_some(None),
        }
    }
}

// ---------------------------------------------------------------------------
// TTL-aware single-key map specification.
// ---------------------------------------------------------------------------

/// Outcome-annotated operation on one key of a **TTL-enabled** map driven
/// by a fake clock. Extends [`MapOp`] with TTL arming and explicit clock
/// advances: the recording test advances the shared fake clock through a
/// recorded [`TtlOp::Advance`], so expiry becomes an event *in the
/// history* the checker can order against reads and writes.
///
/// TTLs are recorded **relative**: the checker derives the deadline from
/// the machine's `now` at the operation's linearization point — exactly
/// what the store does when it reads its clock inside the operation.
/// Use distinct put values within a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TtlOp {
    /// The fake clock advanced to the absolute tick `t` (monotone).
    Advance(u64),
    /// `get` returning the observed live value (`None` = absent or
    /// expired).
    Get(Option<u64>),
    /// `put(new)` returning the previous live value; clears any deadline.
    Put(u64, Option<u64>),
    /// `put_with_ttl(new, ttl)` returning the previous live value; arms
    /// `deadline = now + ttl`.
    PutTtl(u64, u64, Option<u64>),
    /// `expire_after(ttl)` returning whether a live entry was found;
    /// re-arms `deadline = now + ttl` when it was.
    ExpireAfter(u64, bool),
    /// `remove` returning the removed live value.
    Remove(Option<u64>),
}

/// The TTL-aware single-key map machine: the state is the key's current
/// binding with its optional deadline, plus the clock. A binding whose
/// deadline has passed is invisible to (and normalized away by) every
/// operation — so a `Get(Some(_))` strictly after the clock passed the
/// binding's deadline cannot linearize, and neither can a `Put` that
/// claims an expired previous value.
#[derive(Debug, Clone, Copy, Default)]
pub struct TtlMapSpec {
    /// The key's binding before the history starts.
    pub initial: Option<u64>,
}

/// [`TtlMapSpec`] state: `(now, Some((value, deadline)))` with
/// `deadline == u64::MAX` meaning "never expires".
pub type TtlState = (u64, Option<(u64, u64)>);

impl SeqSpec for TtlMapSpec {
    type Op = TtlOp;
    type State = TtlState;

    fn initial(&self) -> TtlState {
        (0, self.initial.map(|v| (v, u64::MAX)))
    }

    fn apply(&self, state: &TtlState, op: TtlOp) -> Option<TtlState> {
        let (now, binding) = *state;
        // Expiry is by-need: normalize the expired binding away before
        // deciding the operation (deadline == now is already expired —
        // entries live while `now < deadline`).
        let live = binding.filter(|&(_, d)| d > now);
        match op {
            TtlOp::Advance(t) => (t >= now).then_some((t, live)),
            TtlOp::Get(seen) => (seen == live.map(|(v, _)| v)).then_some((now, live)),
            TtlOp::Put(new, prev) => {
                (prev == live.map(|(v, _)| v)).then_some((now, Some((new, u64::MAX))))
            }
            TtlOp::PutTtl(new, ttl, prev) => {
                (prev == live.map(|(v, _)| v)).then(|| (now, Some((new, now.saturating_add(ttl)))))
            }
            TtlOp::ExpireAfter(ttl, found) => {
                if found != live.is_some() {
                    return None;
                }
                let rearmed = live.map(|(v, _)| (v, now.saturating_add(ttl)));
                Some((now, rearmed))
            }
            TtlOp::Remove(taken) => (taken == live.map(|(v, _)| v)).then_some((now, None)),
        }
    }
}

// ---------------------------------------------------------------------------
// Range-observing multi-key map specification.
// ---------------------------------------------------------------------------

/// Number of tracked keys in a [`RangeMapSpec`] history. Three keys keep
/// the state space tiny while still letting a non-atomic range tear
/// *between* keys (the failure single-key specs cannot express).
pub const RANGE_KEYS: usize = 3;

/// Outcome-annotated operation over [`RANGE_KEYS`] tracked keys of an
/// ordered map. Writes address keys by index into the tracked set; a
/// `Range` op reports the values it observed for all tracked keys in one
/// traversal (`None` = key absent). Use distinct put values within a
/// history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeOp {
    /// `put(keys[i], new)` returning the previous value.
    Put(usize, u64, Option<u64>),
    /// `remove(keys[i])` returning the removed value.
    Remove(usize, Option<u64>),
    /// `get(keys[i])` returning the observed value.
    Get(usize, Option<u64>),
    /// One `range` traversal covering all tracked keys: the observed
    /// binding per tracked key, in key order.
    Range([Option<u64>; RANGE_KEYS]),
}

/// The multi-key map machine behind [`RangeOp`]: the state is the binding
/// of each tracked key. A `Range` outcome is legal only when *all* tracked
/// bindings match at a single point — exactly the snapshot property a
/// validated range scan claims.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangeMapSpec {
    /// Bindings before the history starts.
    pub initial: [Option<u64>; RANGE_KEYS],
}

impl SeqSpec for RangeMapSpec {
    type Op = RangeOp;
    type State = [Option<u64>; RANGE_KEYS];

    fn initial(&self) -> Self::State {
        self.initial
    }

    fn apply(&self, state: &Self::State, op: RangeOp) -> Option<Self::State> {
        match op {
            RangeOp::Put(i, new, prev) => (state[i] == prev).then(|| {
                let mut s = *state;
                s[i] = Some(new);
                s
            }),
            RangeOp::Remove(i, removed) => (state[i] == removed).then(|| {
                let mut s = *state;
                s[i] = None;
                s
            }),
            RangeOp::Get(i, seen) => (state[i] == seen).then_some(*state),
            RangeOp::Range(seen) => (seen == *state).then_some(*state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(invoke: u64, response: u64, op: SetOp) -> TimedOp {
        TimedOp {
            invoke,
            response,
            op,
        }
    }

    #[test]
    fn sequential_legal_history_passes() {
        let h = [
            op(0, 1, SetOp::Insert(true)),
            op(2, 3, SetOp::Search(true)),
            op(4, 5, SetOp::Delete(true)),
            op(6, 7, SetOp::Search(false)),
        ];
        assert!(check_history(&h, false));
    }

    #[test]
    fn sequential_illegal_history_fails() {
        // Search finds the key before any insert completes — and no insert
        // is even concurrent.
        let h = [op(0, 1, SetOp::Search(true)), op(2, 3, SetOp::Insert(true))];
        assert!(!check_history(&h, false));
    }

    #[test]
    fn concurrent_ops_may_reorder() {
        // Search overlaps the insert: finding the key is fine (insert
        // linearizes first).
        let h = [
            op(0, 10, SetOp::Insert(true)),
            op(1, 9, SetOp::Search(true)),
        ];
        assert!(check_history(&h, false));
        // But a search strictly AFTER a successful insert must find it.
        let h = [
            op(0, 1, SetOp::Insert(true)),
            op(2, 3, SetOp::Search(false)),
        ];
        assert!(!check_history(&h, false));
    }

    #[test]
    fn double_successful_delete_is_not_linearizable() {
        // One insert, two successful deletes, no second insert.
        let h = [
            op(0, 1, SetOp::Insert(true)),
            op(2, 10, SetOp::Delete(true)),
            op(3, 9, SetOp::Delete(true)),
        ];
        assert!(!check_history(&h, false));
    }

    #[test]
    fn racing_inserts_one_winner_is_linearizable() {
        let h = [
            op(0, 10, SetOp::Insert(true)),
            op(1, 9, SetOp::Insert(false)),
            op(11, 12, SetOp::Search(true)),
        ];
        assert!(check_history(&h, false));
        // Two winners cannot linearize.
        let h = [
            op(0, 10, SetOp::Insert(true)),
            op(1, 9, SetOp::Insert(true)),
        ];
        assert!(!check_history(&h, false));
    }

    #[test]
    fn initial_state_matters() {
        let h = [op(0, 1, SetOp::Delete(true))];
        assert!(check_history(&h, true));
        assert!(!check_history(&h, false));
    }

    #[test]
    fn real_structure_history_is_linearizable() {
        // Drive a real OPTIK-protected history on one key from several
        // threads and check it. Uses the recorder + a shared structure via
        // dynamic dispatch kept small so the checker stays in its budget.
        use std::sync::{Arc, Barrier, Mutex};

        // A tiny single-key "set" implemented with an OptikCell-like CAS on
        // presence — stand-in here to keep the harness crate dependency-free
        // (the data-structure crates run the same pattern in their
        // integration tests).
        let present = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let all = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let present = Arc::clone(&present);
            let all = Arc::clone(&all);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rec = Recorder::new();
                barrier.wait();
                for i in 0..12u64 {
                    match (t + i) % 3 {
                        0 => rec.record(SetOp::Insert, || {
                            !present.swap(true, std::sync::atomic::Ordering::SeqCst)
                        }),
                        1 => rec.record(SetOp::Delete, || {
                            present.swap(false, std::sync::atomic::Ordering::SeqCst)
                        }),
                        _ => rec.record(SetOp::Search, || {
                            present.load(std::sync::atomic::Ordering::SeqCst)
                        }),
                    }
                }
                all.lock().unwrap().extend(rec.into_ops());
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let history = all.lock().unwrap().clone();
        assert_eq!(history.len(), 48);
        assert!(
            check_history(&history, false),
            "atomic-swap set produced a non-linearizable history?!"
        );
    }

    #[test]
    #[should_panic(expected = "up to 64 operations")]
    fn oversized_history_panics() {
        let h: Vec<TimedOp> = (0..65)
            .map(|i| op(i, i + 1, SetOp::Search(false)))
            .collect();
        let _ = check_history(&h, false);
    }

    fn qop(invoke: u64, response: u64, op: QueueOp) -> Timed<QueueOp> {
        Timed {
            invoke,
            response,
            op,
        }
    }

    #[test]
    fn fifo_sequential_order_is_enforced() {
        // enqueue 1, enqueue 2 → dequeues must yield 1 then 2.
        let legal = [
            qop(0, 1, QueueOp::Enqueue(1)),
            qop(2, 3, QueueOp::Enqueue(2)),
            qop(4, 5, QueueOp::Dequeue(Some(1))),
            qop(6, 7, QueueOp::Dequeue(Some(2))),
            qop(8, 9, QueueOp::Dequeue(None)),
        ];
        assert!(check(&FifoSpec, &legal));
        let illegal = [
            qop(0, 1, QueueOp::Enqueue(1)),
            qop(2, 3, QueueOp::Enqueue(2)),
            qop(4, 5, QueueOp::Dequeue(Some(2))), // LIFO order: not a queue
        ];
        assert!(!check(&FifoSpec, &illegal));
    }

    #[test]
    fn fifo_concurrent_enqueues_allow_either_order() {
        let h = [
            qop(0, 10, QueueOp::Enqueue(1)),
            qop(1, 9, QueueOp::Enqueue(2)),
            qop(11, 12, QueueOp::Dequeue(Some(2))),
            qop(13, 14, QueueOp::Dequeue(Some(1))),
        ];
        assert!(check(&FifoSpec, &h), "2 before 1 is a legal linearization");
        // But once both enqueues precede it, a dequeue cannot skip.
        let h = [
            qop(0, 1, QueueOp::Enqueue(1)),
            qop(2, 3, QueueOp::Enqueue(2)),
            qop(4, 5, QueueOp::Dequeue(Some(2))),
            qop(6, 7, QueueOp::Dequeue(Some(1))),
        ];
        assert!(!check(&FifoSpec, &h));
    }

    #[test]
    fn fifo_lost_and_duplicated_elements_fail() {
        // Dequeue of a value never enqueued.
        let h = [qop(0, 1, QueueOp::Dequeue(Some(7)))];
        assert!(!check(&FifoSpec, &h));
        // Same element dequeued twice.
        let h = [
            qop(0, 1, QueueOp::Enqueue(1)),
            qop(2, 3, QueueOp::Dequeue(Some(1))),
            qop(4, 5, QueueOp::Dequeue(Some(1))),
        ];
        assert!(!check(&FifoSpec, &h));
        // Empty dequeue while the queue must be non-empty.
        let h = [
            qop(0, 1, QueueOp::Enqueue(1)),
            qop(2, 3, QueueOp::Dequeue(None)),
        ];
        assert!(!check(&FifoSpec, &h));
    }

    fn sop(invoke: u64, response: u64, op: StackOp) -> Timed<StackOp> {
        Timed {
            invoke,
            response,
            op,
        }
    }

    #[test]
    fn lifo_spec_mirrors_fifo() {
        let legal = [
            sop(0, 1, StackOp::Push(1)),
            sop(2, 3, StackOp::Push(2)),
            sop(4, 5, StackOp::Pop(Some(2))),
            sop(6, 7, StackOp::Pop(Some(1))),
            sop(8, 9, StackOp::Pop(None)),
        ];
        assert!(check(&LifoSpec, &legal));
        let illegal = [
            sop(0, 1, StackOp::Push(1)),
            sop(2, 3, StackOp::Push(2)),
            sop(4, 5, StackOp::Pop(Some(1))), // FIFO order: not a stack
        ];
        assert!(!check(&LifoSpec, &illegal));
    }

    #[test]
    fn empty_history_is_trivially_linearizable() {
        assert!(check(&FifoSpec, &[]));
        assert!(check(&LifoSpec, &[]));
        assert!(check_history(&[], false));
        assert!(check(&MapSpec::default(), &[]));
    }

    fn mop(invoke: u64, response: u64, op: MapOp) -> Timed<MapOp> {
        Timed {
            invoke,
            response,
            op,
        }
    }

    #[test]
    fn map_sequential_upsert_chain() {
        let h = [
            mop(0, 1, MapOp::Put(10, None)),
            mop(2, 3, MapOp::Get(Some(10))),
            mop(4, 5, MapOp::Put(20, Some(10))),
            mop(6, 7, MapOp::Remove(Some(20))),
            mop(8, 9, MapOp::Get(None)),
        ];
        assert!(check(&MapSpec::default(), &h));
    }

    #[test]
    fn map_value_mixing_is_rejected() {
        // A get that observes a value no put ever bound is illegal even
        // though the key's *presence* is plausible — this is exactly what
        // SetSpec cannot see.
        let h = [
            mop(0, 1, MapOp::Put(10, None)),
            mop(2, 3, MapOp::Get(Some(99))),
        ];
        assert!(!check(&MapSpec::default(), &h));
        // Likewise a put reporting a stale previous value.
        let h = [
            mop(0, 1, MapOp::Put(10, None)),
            mop(2, 3, MapOp::Put(20, Some(10))),
            mop(4, 5, MapOp::Put(30, Some(10))),
        ];
        assert!(!check(&MapSpec::default(), &h));
    }

    #[test]
    fn map_put_has_no_absent_window() {
        // After put(10) succeeded and before any remove, a get strictly
        // later must not miss — a delete+insert "upsert" would fail here.
        let h = [
            mop(0, 1, MapOp::Put(10, None)),
            mop(2, 3, MapOp::Put(20, Some(10))),
            mop(4, 5, MapOp::Get(None)),
        ];
        assert!(!check(&MapSpec::default(), &h));
    }

    #[test]
    fn map_concurrent_puts_resolve_by_reported_prev() {
        // Two overlapping puts: legal iff one observed the other.
        let h = [
            mop(0, 10, MapOp::Put(1, None)),
            mop(1, 9, MapOp::Put(2, Some(1))),
            mop(11, 12, MapOp::Get(Some(2))),
        ];
        assert!(check(&MapSpec::default(), &h));
        // Both claiming a fresh insert cannot linearize.
        let h = [
            mop(0, 10, MapOp::Put(1, None)),
            mop(1, 9, MapOp::Put(2, None)),
            mop(11, 12, MapOp::Get(Some(2))),
        ];
        assert!(!check(&MapSpec::default(), &h));
    }

    #[test]
    fn map_initial_binding_matters() {
        let h = [mop(0, 1, MapOp::Remove(Some(7)))];
        assert!(check(&MapSpec { initial: Some(7) }, &h));
        assert!(!check(&MapSpec::default(), &h));
    }

    fn top(invoke: u64, response: u64, op: TtlOp) -> Timed<TtlOp> {
        Timed {
            invoke,
            response,
            op,
        }
    }

    #[test]
    fn ttl_sequential_expiry_chain() {
        let h = [
            top(0, 1, TtlOp::PutTtl(10, 5, None)),
            top(2, 3, TtlOp::Get(Some(10))),
            top(4, 5, TtlOp::Advance(4)),
            top(6, 7, TtlOp::Get(Some(10))),
            top(8, 9, TtlOp::Advance(5)),
            top(10, 11, TtlOp::Get(None)),     // deadline tick: expired
            top(12, 13, TtlOp::Put(20, None)), // expired prev is invisible
            top(14, 15, TtlOp::Advance(1_000)),
            top(16, 17, TtlOp::Get(Some(20))), // plain puts never expire
        ];
        assert!(check(&TtlMapSpec::default(), &h));
    }

    #[test]
    fn ttl_get_after_expiry_is_rejected() {
        let h = [
            top(0, 1, TtlOp::PutTtl(10, 5, None)),
            top(2, 3, TtlOp::Advance(9)),
            top(4, 5, TtlOp::Get(Some(10))),
        ];
        assert!(
            !check(&TtlMapSpec::default(), &h),
            "a strictly-later get must not see an expired binding"
        );
        // …but a get *concurrent* with the advance may order before it.
        let h = [
            top(0, 1, TtlOp::PutTtl(10, 5, None)),
            top(2, 10, TtlOp::Advance(9)),
            top(3, 9, TtlOp::Get(Some(10))),
        ];
        assert!(check(&TtlMapSpec::default(), &h));
    }

    #[test]
    fn ttl_expired_prev_values_are_invisible() {
        // A put observing the expired binding as its prev cannot linearize.
        let h = [
            top(0, 1, TtlOp::PutTtl(10, 5, None)),
            top(2, 3, TtlOp::Advance(7)),
            top(4, 5, TtlOp::Put(20, Some(10))),
        ];
        assert!(!check(&TtlMapSpec::default(), &h));
        // Neither can a successful remove of an expired binding.
        let h = [
            top(0, 1, TtlOp::PutTtl(10, 5, None)),
            top(2, 3, TtlOp::Advance(7)),
            top(4, 5, TtlOp::Remove(Some(10))),
        ];
        assert!(!check(&TtlMapSpec::default(), &h));
    }

    #[test]
    fn ttl_expire_after_rearms() {
        let h = [
            top(0, 1, TtlOp::Put(10, None)),
            top(2, 3, TtlOp::ExpireAfter(5, true)),
            top(4, 5, TtlOp::Advance(4)),
            top(6, 7, TtlOp::ExpireAfter(5, true)), // re-arm to 9
            top(8, 9, TtlOp::Advance(8)),
            top(10, 11, TtlOp::Get(Some(10))),
            top(12, 13, TtlOp::Advance(9)),
            top(14, 15, TtlOp::Get(None)),
            top(16, 17, TtlOp::ExpireAfter(5, false)), // nothing live to arm
        ];
        assert!(check(&TtlMapSpec::default(), &h));
        // Claiming found=true on an expired binding is illegal.
        let h = [
            top(0, 1, TtlOp::PutTtl(10, 3, None)),
            top(2, 3, TtlOp::Advance(3)),
            top(4, 5, TtlOp::ExpireAfter(5, true)),
        ];
        assert!(!check(&TtlMapSpec::default(), &h));
    }

    #[test]
    fn ttl_clock_never_rewinds() {
        let h = [top(0, 1, TtlOp::Advance(10)), top(2, 3, TtlOp::Advance(4))];
        assert!(!check(&TtlMapSpec::default(), &h));
    }

    #[test]
    fn ttl_initial_binding_never_expires_by_itself() {
        let spec = TtlMapSpec { initial: Some(7) };
        let h = [
            top(0, 1, TtlOp::Advance(1_000)),
            top(2, 3, TtlOp::Get(Some(7))),
            top(4, 5, TtlOp::Remove(Some(7))),
        ];
        assert!(check(&spec, &h));
    }

    fn rop(invoke: u64, response: u64, op: RangeOp) -> Timed<RangeOp> {
        Timed {
            invoke,
            response,
            op,
        }
    }

    #[test]
    fn range_sequential_snapshot_chain() {
        let h = [
            rop(0, 1, RangeOp::Put(0, 10, None)),
            rop(2, 3, RangeOp::Put(2, 30, None)),
            rop(4, 5, RangeOp::Range([Some(10), None, Some(30)])),
            rop(6, 7, RangeOp::Remove(0, Some(10))),
            rop(8, 9, RangeOp::Range([None, None, Some(30)])),
        ];
        assert!(check(&RangeMapSpec::default(), &h));
    }

    #[test]
    fn torn_range_is_rejected() {
        // Both puts strictly precede the range; a range that sees the
        // second write but not the first observed no single point in time.
        let h = [
            rop(0, 1, RangeOp::Put(0, 10, None)),
            rop(2, 3, RangeOp::Put(1, 20, None)),
            rop(4, 5, RangeOp::Range([None, Some(20), None])),
        ];
        assert!(!check(&RangeMapSpec::default(), &h));
    }

    #[test]
    fn concurrent_range_may_order_either_side_of_a_write() {
        let h = [
            rop(0, 10, RangeOp::Put(1, 20, None)),
            rop(1, 9, RangeOp::Range([None, None, None])),
        ];
        assert!(check(&RangeMapSpec::default(), &h), "range before the put");
        let h = [
            rop(0, 10, RangeOp::Put(1, 20, None)),
            rop(1, 9, RangeOp::Range([None, Some(20), None])),
        ];
        assert!(check(&RangeMapSpec::default(), &h), "range after the put");
    }

    #[test]
    fn range_initial_bindings_matter() {
        let h = [rop(0, 1, RangeOp::Range([None, Some(5), None]))];
        let spec = RangeMapSpec {
            initial: [None, Some(5), None],
        };
        assert!(check(&spec, &h));
        assert!(!check(&RangeMapSpec::default(), &h));
    }
}
