//! A small linearizability checker for single-key set histories.
//!
//! The concurrent structures in this workspace claim linearizability (§2 of
//! the paper). Full-history checking is NP-hard, but for operations on a
//! *single key* the sequential specification collapses to a two-state
//! machine (`absent`/`present`), which a Wing–Gong style search decides
//! quickly for the history sizes our stress tests produce.
//!
//! Record operations with [`Recorder`] (one per thread, merged afterwards)
//! and decide with [`check_history`].

use std::collections::HashSet;

/// Outcome-annotated operation on one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `insert` returning whether it inserted.
    Insert(bool),
    /// `delete` returning whether it removed.
    Delete(bool),
    /// `search` returning whether it found the key.
    Search(bool),
}

impl SetOp {
    /// Applies the op to `present`, returning the next state, or `None`
    /// if the recorded outcome is impossible in that state.
    fn apply(self, present: bool) -> Option<bool> {
        match self {
            SetOp::Insert(true) => (!present).then_some(true),
            SetOp::Insert(false) => present.then_some(true),
            SetOp::Delete(true) => present.then_some(false),
            SetOp::Delete(false) => (!present).then_some(false),
            SetOp::Search(found) => (found == present).then_some(present),
        }
    }
}

/// One timed operation: invocation and response instants from a shared
/// monotonic clock, plus the observed outcome.
#[derive(Debug, Clone, Copy)]
pub struct TimedOp {
    /// Invocation timestamp.
    pub invoke: u64,
    /// Response timestamp (`>= invoke`).
    pub response: u64,
    /// The operation and its outcome.
    pub op: SetOp,
}

/// Per-thread recorder producing [`TimedOp`]s from a shared clock.
#[derive(Debug, Default)]
pub struct Recorder {
    ops: Vec<TimedOp>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` with [`synchro::cycles::now`] and records its outcome.
    pub fn record(&mut self, make_op: impl FnOnce(bool) -> SetOp, f: impl FnOnce() -> bool) {
        let invoke = synchro::cycles::now();
        let outcome = f();
        let response = synchro::cycles::now();
        self.ops.push(TimedOp {
            invoke,
            response,
            op: make_op(outcome),
        });
    }

    /// Consumes the recorder.
    pub fn into_ops(self) -> Vec<TimedOp> {
        self.ops
    }
}

/// Decides whether `history` (ops from all threads, any order) is
/// linearizable against the single-key set specification starting from
/// `initially_present`.
///
/// Returns `true` iff some permutation of the operations (a) respects the
/// real-time partial order (an op that responded before another was
/// invoked must precede it) and (b) is legal for the two-state spec.
pub fn check_history(history: &[TimedOp], initially_present: bool) -> bool {
    let n = history.len();
    if n == 0 {
        return true;
    }
    if n > 64 {
        // The bitmask search below carries u64 masks; split longer
        // histories into windows at callers, or raise here.
        panic!("check_history supports up to 64 operations, got {n}");
    }
    // DFS over (done-mask, state), memoizing failures.
    let mut seen: HashSet<(u64, bool)> = HashSet::new();
    dfs(history, 0, initially_present, &mut seen)
}

fn dfs(ops: &[TimedOp], done: u64, present: bool, seen: &mut HashSet<(u64, bool)>) -> bool {
    if done.count_ones() as usize == ops.len() {
        return true;
    }
    if !seen.insert((done, present)) {
        return false; // already proven a dead end
    }
    // An op may linearize next iff no *other* pending op responded before
    // it was invoked (real-time order) — i.e. it is minimal among pending.
    let min_response = ops
        .iter()
        .enumerate()
        .filter(|(i, _)| done & (1 << i) == 0)
        .map(|(_, o)| o.response)
        .min()
        .expect("pending op exists");
    for (i, o) in ops.iter().enumerate() {
        if done & (1 << i) != 0 || o.invoke > min_response {
            continue;
        }
        if let Some(next) = o.op.apply(present) {
            if dfs(ops, done | (1 << i), next, seen) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(invoke: u64, response: u64, op: SetOp) -> TimedOp {
        TimedOp {
            invoke,
            response,
            op,
        }
    }

    #[test]
    fn sequential_legal_history_passes() {
        let h = [
            op(0, 1, SetOp::Insert(true)),
            op(2, 3, SetOp::Search(true)),
            op(4, 5, SetOp::Delete(true)),
            op(6, 7, SetOp::Search(false)),
        ];
        assert!(check_history(&h, false));
    }

    #[test]
    fn sequential_illegal_history_fails() {
        // Search finds the key before any insert completes — and no insert
        // is even concurrent.
        let h = [op(0, 1, SetOp::Search(true)), op(2, 3, SetOp::Insert(true))];
        assert!(!check_history(&h, false));
    }

    #[test]
    fn concurrent_ops_may_reorder() {
        // Search overlaps the insert: finding the key is fine (insert
        // linearizes first).
        let h = [
            op(0, 10, SetOp::Insert(true)),
            op(1, 9, SetOp::Search(true)),
        ];
        assert!(check_history(&h, false));
        // But a search strictly AFTER a successful insert must find it.
        let h = [
            op(0, 1, SetOp::Insert(true)),
            op(2, 3, SetOp::Search(false)),
        ];
        assert!(!check_history(&h, false));
    }

    #[test]
    fn double_successful_delete_is_not_linearizable() {
        // One insert, two successful deletes, no second insert.
        let h = [
            op(0, 1, SetOp::Insert(true)),
            op(2, 10, SetOp::Delete(true)),
            op(3, 9, SetOp::Delete(true)),
        ];
        assert!(!check_history(&h, false));
    }

    #[test]
    fn racing_inserts_one_winner_is_linearizable() {
        let h = [
            op(0, 10, SetOp::Insert(true)),
            op(1, 9, SetOp::Insert(false)),
            op(11, 12, SetOp::Search(true)),
        ];
        assert!(check_history(&h, false));
        // Two winners cannot linearize.
        let h = [
            op(0, 10, SetOp::Insert(true)),
            op(1, 9, SetOp::Insert(true)),
        ];
        assert!(!check_history(&h, false));
    }

    #[test]
    fn initial_state_matters() {
        let h = [op(0, 1, SetOp::Delete(true))];
        assert!(check_history(&h, true));
        assert!(!check_history(&h, false));
    }

    #[test]
    fn real_structure_history_is_linearizable() {
        // Drive a real OPTIK-protected history on one key from several
        // threads and check it. Uses the recorder + a shared structure via
        // dynamic dispatch kept small so the checker stays in its budget.
        use std::sync::{Arc, Barrier, Mutex};

        // A tiny single-key "set" implemented with an OptikCell-like CAS on
        // presence — stand-in here to keep the harness crate dependency-free
        // (the data-structure crates run the same pattern in their
        // integration tests).
        let present = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let all = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let present = Arc::clone(&present);
            let all = Arc::clone(&all);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rec = Recorder::new();
                barrier.wait();
                for i in 0..12u64 {
                    match (t + i) % 3 {
                        0 => rec.record(SetOp::Insert, || {
                            !present.swap(true, std::sync::atomic::Ordering::SeqCst)
                        }),
                        1 => rec.record(SetOp::Delete, || {
                            present.swap(false, std::sync::atomic::Ordering::SeqCst)
                        }),
                        _ => rec.record(SetOp::Search, || {
                            present.load(std::sync::atomic::Ordering::SeqCst)
                        }),
                    }
                }
                all.lock().unwrap().extend(rec.into_ops());
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let history = all.lock().unwrap().clone();
        assert_eq!(history.len(), 48);
        assert!(
            check_history(&history, false),
            "atomic-swap set produced a non-linearizable history?!"
        );
    }

    #[test]
    #[should_panic(expected = "up to 64 operations")]
    fn oversized_history_panics() {
        let h: Vec<TimedOp> = (0..65)
            .map(|i| op(i, i + 1, SetOp::Search(false)))
            .collect();
        let _ = check_history(&h, false);
    }
}
