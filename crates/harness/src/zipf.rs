//! Zipfian key distribution (§5: "a zipfian distribution of keys with
//! a = 0.9, where the largest keys are the most popular").
//!
//! Rank `r` (1-based) has probability proportional to `1 / r^a`. Rank 1 —
//! the most popular — is mapped to the **largest** key of the range, rank 2
//! to the second largest, and so on, matching the paper's skew direction.
//!
//! Implementation: a precomputed cumulative table + binary search. Exact
//! (no rejection), O(log n) per draw, and the table is shared read-only
//! between threads.

use crate::rng::FastRng;

/// The paper's skew parameter.
pub const PAPER_ALPHA: f64 = 0.9;

/// A zipfian sampler over `n` ranks.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// cdf[i] = P(rank <= i+1), monotonically increasing to 1.0.
    cdf: Box<[f64]>,
}

impl Zipf {
    /// Builds a sampler for `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "bad alpha {alpha}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point undershoot at the end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self {
            cdf: cdf.into_boxed_slice(),
        }
    }

    /// Builds the paper's sampler (`alpha = 0.9`) over `n` ranks.
    pub fn paper(n: usize) -> Self {
        Self::new(n, PAPER_ALPHA)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true: `n > 0` enforced).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[1, n]`; rank 1 is the most popular.
    #[inline]
    pub fn sample_rank(&self, rng: &mut FastRng) -> usize {
        let u = rng.next_f64();
        // First index whose cdf >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => i + 1,
            Err(i) => i + 1,
        }
    }

    /// Draws a key in `[lo, hi]`, mapping rank 1 → `hi` (largest keys most
    /// popular, as in the paper).
    ///
    /// The sampler must have been built with `n == hi - lo + 1` ranks.
    #[inline]
    pub fn sample_key(&self, rng: &mut FastRng, lo: u64, hi: u64) -> u64 {
        debug_assert_eq!(self.cdf.len() as u64, hi - lo + 1);
        let rank = self.sample_rank(rng) as u64; // 1 = most popular
        hi - (rank - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_stay_in_bounds() {
        let z = Zipf::paper(100);
        let mut rng = FastRng::new(1);
        for _ in 0..10_000 {
            let r = z.sample_rank(&mut rng);
            assert!((1..=100).contains(&r));
        }
    }

    #[test]
    fn rank_one_is_most_frequent() {
        let z = Zipf::paper(64);
        let mut rng = FastRng::new(2);
        let mut counts = vec![0usize; 65];
        for _ in 0..100_000 {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        let max = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(max, 1, "rank 1 must dominate: {counts:?}");
        // Monotone-ish decay: rank 1 well above rank 32.
        assert!(counts[1] > counts[32] * 2);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(8, 0.0);
        let mut rng = FastRng::new(3);
        let mut counts = [0usize; 9];
        const DRAWS: usize = 80_000;
        for _ in 0..DRAWS {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        let expected = DRAWS / 8;
        for (r, &count) in counts.iter().enumerate().skip(1) {
            let c = count as f64;
            assert!(
                c > expected as f64 * 0.9 && c < expected as f64 * 1.1,
                "rank {r} count {c} not uniform"
            );
        }
    }

    #[test]
    fn keys_map_largest_most_popular() {
        let z = Zipf::paper(16);
        let mut rng = FastRng::new(4);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let k = z.sample_key(&mut rng, 100, 115);
            assert!((100..=115).contains(&k));
            *counts.entry(k).or_insert(0usize) += 1;
        }
        let most = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert_eq!(*most.0, 115, "largest key must be most popular");
    }

    #[test]
    fn empirical_frequencies_match_zipf_pmf() {
        let n = 32;
        let alpha = 0.9;
        let z = Zipf::new(n, alpha);
        let mut rng = FastRng::new(5);
        const DRAWS: usize = 400_000;
        let mut counts = vec![0usize; n + 1];
        for _ in 0..DRAWS {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        let h: f64 = (1..=n).map(|r| 1.0 / (r as f64).powf(alpha)).sum();
        for r in [1usize, 2, 4, 8, 16, 32] {
            let expected = DRAWS as f64 / (r as f64).powf(alpha) / h;
            let got = counts[r] as f64;
            assert!(
                (got - expected).abs() < expected * 0.15 + 30.0,
                "rank {r}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::paper(0);
    }
}
