//! Fast per-thread pseudo-random number generation for workload driving.
//!
//! xorshift128+ — a few instructions per draw, so the generator never
//! dominates the measured data-structure operation. Not cryptographic;
//! deterministic per seed so runs are reproducible.

/// A xorshift128+ generator.
#[derive(Debug, Clone)]
pub struct FastRng {
    s0: u64,
    s1: u64,
}

impl FastRng {
    /// Creates a generator from a seed (any value; zero is remapped).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 to diffuse the seed into two non-zero words.
        let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s0 = next();
        let s1 = next();
        Self {
            s0: if s0 == 0 { 1 } else { s0 },
            s1: if s1 == 0 { 2 } else { s1 },
        }
    }

    /// Per-thread seed derivation: distinct, deterministic streams.
    pub fn for_thread(base_seed: u64, thread_id: usize) -> Self {
        Self::new(base_seed ^ (thread_id as u64).wrapping_mul(0xA24BAED4963EE407))
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be positive.
    ///
    /// Uses the widening-multiply trick (Lemire); the tiny modulo bias is
    /// irrelevant for workload generation.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = FastRng::new(42);
        let mut b = FastRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_threads_get_different_streams() {
        let mut a = FastRng::for_thread(42, 0);
        let mut b = FastRng::for_thread(42, 1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn bounded_draws_stay_in_bounds() {
        let mut rng = FastRng::new(7);
        for _ in 0..10_000 {
            let x = rng.next_below(17);
            assert!(x < 17);
            let y = rng.range_inclusive(5, 9);
            assert!((5..=9).contains(&y));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bounded_draws_cover_the_range() {
        let mut rng = FastRng::new(3);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = FastRng::new(11);
        const BUCKETS: usize = 16;
        const DRAWS: usize = 160_000;
        let mut counts = [0usize; BUCKETS];
        for _ in 0..DRAWS {
            counts[rng.next_below(BUCKETS as u64) as usize] += 1;
        }
        let expected = DRAWS / BUCKETS;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected as f64 * 0.9 && (c as f64) < expected as f64 * 1.1,
                "bucket {i} count {c} far from {expected}"
            );
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = FastRng::new(0);
        // Must not get stuck at zero.
        let draws: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
    }
}
