//! Scaling knobs for the multi-threaded stress tests.
//!
//! Re-exported from [`synchro::stress`] (the bottom of the dependency
//! stack, so every crate's own tests can use it too). See that module for
//! the `STRESS_SCALE` / `available_parallelism` scaling rules; the short
//! version: iteration counts tuned for an 8-core box shrink on smaller
//! runners so tier-1 `cargo test` stays fast, and the `--ignored` tier
//! always runs at full strength.

pub use synchro::stress::{ops, scale, BASELINE_CORES};
