//! Small statistics helpers: the paper reports "the median value of 11
//! repetitions of 5 seconds each".

/// Default repetition count from the paper (scaled down by most benches).
pub const PAPER_REPETITIONS: usize = 11;

/// Median of a sample (averaging the middle pair for even sizes).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of empty sample");
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Arithmetic mean.
pub fn mean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "mean of empty sample");
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Sample standard deviation (n-1 denominator); 0 for a single sample.
pub fn stddev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
    var.sqrt()
}

/// Runs `reps` repetitions of a measurement and returns the median —
/// the paper's reporting rule.
pub fn median_of_reps(reps: usize, mut measure: impl FnMut(usize) -> f64) -> f64 {
    assert!(reps > 0);
    let samples: Vec<f64> = (0..reps).map(&mut measure).collect();
    median(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn median_is_robust_to_outliers() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0, 1e9]), 3.0);
    }

    #[test]
    fn mean_and_stddev() {
        let s = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&s), 5.0);
        let sd = stddev(&s);
        assert!((sd - 2.138).abs() < 0.01, "{sd}");
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn median_of_reps_runs_all_reps() {
        let mut calls = 0;
        let m = median_of_reps(5, |i| {
            calls += 1;
            i as f64
        });
        assert_eq!(calls, 5);
        assert_eq!(m, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_empty_panics() {
        let _ = median(&[]);
    }
}
