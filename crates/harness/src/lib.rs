//! Microbenchmark harness reproducing the OPTIK paper's methodology (§5).
//!
//! The paper's experimental settings, all implemented here:
//!
//! - **Key ranges**: "we keep the range double the initial size ... so that
//!   the size of the structure remains close to the initial". See
//!   [`Workload`].
//! - **Effective updates**: "roughly half of the update operations ...
//!   return false. The update rate that we report represents the effective
//!   percentage of updates" — so a *reported* 20% update rate issues 40%
//!   updates (20% inserts + 20% deletes). [`Workload::issued_update_permille`]
//!   performs that conversion.
//! - **Skew**: "a zipfian distribution of keys with a = 0.9, where the
//!   largest keys are the most popular". See [`zipf::Zipf`].
//! - **Latency**: "every thread holds an array of 16K latency measurements"
//!   translated to 5/25/50/75/95-percentile boxplots. See
//!   [`latency::LatencyRecorder`].
//! - **Repetitions**: "median value of 11 repetitions" — [`stats::median`].
//! - **Pauses**: "after every iteration, threads wait for a short duration,
//!   in order to avoid long runs" — [`runner`] does this between operations.

#![warn(missing_docs)]

pub mod api;
pub mod driver;
pub mod json;
pub mod latency;
pub mod linearize;
pub mod report;
pub mod rng;
pub mod runner;
pub mod scenario;
pub mod stats;
pub mod stress;
pub mod table;
pub mod workload;
pub mod zipf;

pub use api::{
    ConcurrentMap, ConcurrentQueue, ConcurrentSet, ConcurrentStack, Key, OrderedMap, SetHandle, Val,
};
pub use driver::{Point, ScenarioReport, SweepConfig};
pub use latency::{LatencyRecorder, OpKind, Percentiles};
pub use report::Report;
pub use rng::FastRng;
pub use runner::{run_workers, WorkerCtx};
pub use scenario::{Measurement, Registry, RunSpec, Scenario, Subject};
pub use workload::{Op, OpMix, Workload};
pub use zipf::Zipf;
