//! Shared interfaces the benchmarked data structures implement.

/// Key type used across all search data structures.
///
/// The value `0` and `u64::MAX` are reserved for head/tail sentinels and
/// empty-slot markers; user keys must lie strictly between them.
pub type Key = u64;

/// Value type used across all data structures.
pub type Val = u64;

/// Smallest user key.
pub const MIN_USER_KEY: Key = 1;
/// Largest user key.
pub const MAX_USER_KEY: Key = u64::MAX - 1;

/// A concurrent search data structure (list, hash table, skip list): the
/// three-operation interface from §2 of the paper.
pub trait ConcurrentSet: Send + Sync {
    /// Searches for `key`, returning its value if present.
    fn search(&self, key: Key) -> Option<Val>;
    /// Inserts `key → val` if absent; returns whether it was inserted.
    fn insert(&self, key: Key, val: Val) -> bool;
    /// Deletes `key`, returning its value if it was present.
    fn delete(&self, key: Key) -> Option<Val>;
    /// Number of elements (O(n); exact only in quiescence).
    fn len(&self) -> usize;
    /// Whether the structure is empty (see [`ConcurrentSet::len`]).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-thread session on a [`ConcurrentSet`].
///
/// Structures with thread-local state (e.g. the node-caching lists of §5.1)
/// implement their operations on a handle; stateless structures get a
/// blanket handle that simply forwards. The benchmark runner always goes
/// through handles.
pub trait SetHandle {
    /// See [`ConcurrentSet::search`].
    fn search(&mut self, key: Key) -> Option<Val>;
    /// See [`ConcurrentSet::insert`].
    fn insert(&mut self, key: Key, val: Val) -> bool;
    /// See [`ConcurrentSet::delete`].
    fn delete(&mut self, key: Key) -> Option<Val>;
}

/// Blanket forwarding handle for stateless structures.
impl<S: ConcurrentSet + ?Sized> SetHandle for &S {
    fn search(&mut self, key: Key) -> Option<Val> {
        ConcurrentSet::search(*self, key)
    }
    fn insert(&mut self, key: Key, val: Val) -> bool {
        ConcurrentSet::insert(*self, key, val)
    }
    fn delete(&mut self, key: Key) -> Option<Val> {
        ConcurrentSet::delete(*self, key)
    }
}

/// A concurrent key–value map: the interface the `optik-kv` store layer
/// builds on.
///
/// Where [`ConcurrentSet`] exposes the paper's three-operation *set*
/// semantics (`insert` fails on a present key), a map's `put` is an atomic
/// **upsert**: it replaces the value of a present key and returns the
/// previous binding. The distinction matters for linearizability: a put
/// implemented as `delete` + `insert` would expose a window in which the
/// key is absent, which the map specification
/// ([`crate::linearize::MapSpec`]) rejects — implementors must update
/// values in place under their own synchronization.
///
/// `for_each` exists for snapshot scans: callers must either hold whatever
/// lock excludes writers (the kv store's per-shard OPTIK lock) or tolerate
/// a momentarily inconsistent view and validate afterwards. Traversal
/// safety under concurrent deletion is the implementor's responsibility
/// (the workspace backends retire nodes through QSBR, so a traversal by a
/// registered, non-quiescing thread never touches freed memory).
pub trait ConcurrentMap: Send + Sync {
    /// Looks up `key`, returning its current value if present.
    fn get(&self, key: Key) -> Option<Val>;
    /// Inserts or atomically updates `key → val`, returning the previous
    /// value (`None` if the key was newly inserted).
    ///
    /// # Panics
    ///
    /// Fixed-capacity backends panic when asked to insert a fresh key into
    /// a full structure — capacity is a sizing decision made at
    /// construction, not an outcome callers are expected to handle.
    fn put(&self, key: Key, val: Val) -> Option<Val>;
    /// Removes `key`, returning its value if it was present.
    fn remove(&self, key: Key) -> Option<Val>;
    /// Number of entries (O(n); exact only in quiescence).
    fn len(&self) -> usize;
    /// Whether the map is empty (see [`ConcurrentMap::len`]).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Visits every entry once (see the trait docs for the concurrency
    /// contract).
    fn for_each(&self, f: &mut dyn FnMut(Key, Val));
}

/// A [`ConcurrentMap`] over a *key-ordered* structure (skip list, BST):
/// the backend contract for the kv store's range scans.
///
/// `range` visits every live entry with `lo <= key <= hi`, in ascending
/// key order, each key at most once. The concurrency contract mirrors
/// [`ConcurrentMap::for_each`]: exact under whatever lock excludes writers
/// (the kv store's per-shard OPTIK lock during its range fallback),
/// quiescence-consistent otherwise — implementations traverse
/// optimistically with per-step validation (version checks where the
/// structure has OPTIK locks, link re-checks elsewhere) and re-position
/// after the last emitted key on interference, so concurrent updates can
/// be missed or included but never tear the order or duplicate a key.
/// Traversal safety under concurrent deletion is QSBR, as for `for_each`.
pub trait OrderedMap: ConcurrentMap {
    /// Visits every entry with key in `[lo, hi]`, ascending (see the trait
    /// docs for the concurrency contract).
    fn range(&self, lo: Key, hi: Key, f: &mut dyn FnMut(Key, Val));

    /// Collects [`OrderedMap::range`] into a vector (sorted by key).
    fn range_collect(&self, lo: Key, hi: Key) -> Vec<(Key, Val)> {
        let mut out = Vec::new();
        self.range(lo, hi, &mut |k, v| out.push((k, v)));
        out
    }
}

/// A concurrent FIFO queue (§5.4).
pub trait ConcurrentQueue: Send + Sync {
    /// Enqueues `val` at the head of the queue.
    fn enqueue(&self, val: Val);
    /// Dequeues the tail element, if any.
    fn dequeue(&self) -> Option<Val>;
    /// Number of elements (O(n); exact only in quiescence).
    fn len(&self) -> usize;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A concurrent LIFO stack (§5.5 — the paper's honest negative result).
///
/// Defined here (rather than in the stacks crate) so the benchmark driver
/// and the correctness tiers can treat stacks like every other structure.
pub trait ConcurrentStack: Send + Sync {
    /// Pushes a value.
    fn push(&self, val: Val);
    /// Pops the most recently pushed value, if any.
    fn pop(&self) -> Option<Val>;
    /// Number of elements (O(n); exact only in quiescence).
    fn len(&self) -> usize;
    /// Whether the stack is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    struct MutexSet(Mutex<BTreeMap<Key, Val>>);
    impl ConcurrentSet for MutexSet {
        fn search(&self, key: Key) -> Option<Val> {
            self.0.lock().unwrap().get(&key).copied()
        }
        fn insert(&self, key: Key, val: Val) -> bool {
            let mut m = self.0.lock().unwrap();
            if let std::collections::btree_map::Entry::Vacant(e) = m.entry(key) {
                e.insert(val);
                true
            } else {
                false
            }
        }
        fn delete(&self, key: Key) -> Option<Val> {
            self.0.lock().unwrap().remove(&key)
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
    }

    #[test]
    fn blanket_handle_forwards() {
        let set = MutexSet(Mutex::new(BTreeMap::new()));
        let mut h: &MutexSet = &set;
        assert!(SetHandle::insert(&mut h, 3, 30));
        assert_eq!(SetHandle::search(&mut h, 3), Some(30));
        assert_eq!(SetHandle::delete(&mut h, 3), Some(30));
        assert!(set.is_empty());
    }
}
