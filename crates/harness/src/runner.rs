//! Duration-based multi-threaded benchmark runner.
//!
//! [`run_workers`] is the generic engine: spawn N workers, release them
//! simultaneously, stop them after a wall-clock duration, collect their
//! results. [`run_set_workload`] and [`run_queue_workload`] layer the
//! paper's set/queue microbenchmarks on top.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use crate::api::{ConcurrentQueue, ConcurrentStack, SetHandle};
use crate::latency::{LatencyRecorder, OpKind};
use crate::rng::FastRng;
use crate::workload::{Op, Workload};

/// Handed to each worker closure: identity plus the stop signal.
pub struct WorkerCtx<'a> {
    /// Worker index in `0..threads`.
    pub tid: usize,
    stop: &'a AtomicBool,
}

impl WorkerCtx<'_> {
    /// Whether the measurement window has ended; poll between operations.
    #[inline]
    pub fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// Runs `threads` copies of `worker` for `duration`, returning their
/// results in thread order. Workers start simultaneously (barrier) and must
/// poll [`WorkerCtx::should_stop`].
pub fn run_workers<R, F>(threads: usize, duration: Duration, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(WorkerCtx<'_>) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker");
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for tid in 0..threads {
            let stop = &stop;
            let barrier = &barrier;
            let worker = &worker;
            handles.push(scope.spawn(move || {
                barrier.wait();
                worker(WorkerCtx { tid, stop })
            }));
        }
        barrier.wait();
        // The coordinator holds no references into any protected structure
        // while it sleeps/joins; going QSBR-offline keeps it from stalling
        // reclamation for the workers (a standard QSBR practice).
        reclaim::offline_while(|| {
            let start = Instant::now();
            while start.elapsed() < duration {
                std::thread::sleep(
                    duration
                        .saturating_sub(start.elapsed())
                        .min(Duration::from_millis(5)),
                );
            }
            stop.store(true, Ordering::Relaxed);
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    })
}

/// Operation counters for one set-benchmark run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetCounts {
    /// Searches that found their key.
    pub search_hit: u64,
    /// Searches that missed.
    pub search_miss: u64,
    /// Successful inserts.
    pub insert_suc: u64,
    /// Failed inserts (key present / no space).
    pub insert_fail: u64,
    /// Successful deletes.
    pub delete_suc: u64,
    /// Failed deletes (key absent).
    pub delete_fail: u64,
}

impl SetCounts {
    /// Total operations executed.
    pub fn total(&self) -> u64 {
        self.search_hit
            + self.search_miss
            + self.insert_suc
            + self.insert_fail
            + self.delete_suc
            + self.delete_fail
    }

    /// Net change in structure size implied by the counts.
    pub fn net_inserted(&self) -> i64 {
        self.insert_suc as i64 - self.delete_suc as i64
    }

    /// Element-wise sum.
    pub fn merge(&mut self, o: &SetCounts) {
        self.search_hit += o.search_hit;
        self.search_miss += o.search_miss;
        self.insert_suc += o.insert_suc;
        self.insert_fail += o.insert_fail;
        self.delete_suc += o.delete_suc;
        self.delete_fail += o.delete_fail;
    }
}

/// Result of a set-workload run.
#[derive(Debug)]
pub struct SetBenchResult {
    /// Merged operation counters.
    pub counts: SetCounts,
    /// Wall-clock duration of the measurement window.
    pub duration: Duration,
    /// Merged latency samples (empty unless latency recording was on).
    pub latency: LatencyRecorder,
}

impl SetBenchResult {
    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        self.counts.total() as f64 / self.duration.as_secs_f64() / 1e6
    }
}

/// Runs the paper's set microbenchmark: each thread draws operations from
/// `workload` against its own handle until the duration elapses.
///
/// `make_handle(tid)` builds the per-thread session (for node-caching
/// structures this is where the cache lives). Threads announce QSBR
/// quiescence between operations, as ssmem does in the paper.
pub fn run_set_workload<H, F>(
    threads: usize,
    duration: Duration,
    workload: &Workload,
    seed: u64,
    record_latency: bool,
    make_handle: F,
) -> SetBenchResult
where
    H: SetHandle,
    F: Fn(usize) -> H + Sync,
{
    let start = Instant::now();
    let results = run_workers(threads, duration, |ctx| {
        let mut rng = FastRng::for_thread(seed, ctx.tid);
        let mut handle = make_handle(ctx.tid);
        let mut counts = SetCounts::default();
        let mut lat = LatencyRecorder::new();
        while !ctx.should_stop() {
            let op = workload.next_op(&mut rng);
            let t0 = record_latency.then(synchro::cycles::now);
            let kind = match op {
                Op::Search(k) => {
                    if handle.search(k).is_some() {
                        counts.search_hit += 1;
                        OpKind::SearchHit
                    } else {
                        counts.search_miss += 1;
                        OpKind::SearchMiss
                    }
                }
                Op::Insert(k, v) => {
                    if handle.insert(k, v) {
                        counts.insert_suc += 1;
                        OpKind::InsertSuc
                    } else {
                        counts.insert_fail += 1;
                        OpKind::InsertFail
                    }
                }
                Op::Delete(k) => {
                    if handle.delete(k).is_some() {
                        counts.delete_suc += 1;
                        OpKind::DeleteSuc
                    } else {
                        counts.delete_fail += 1;
                        OpKind::DeleteFail
                    }
                }
            };
            if let Some(t0) = t0 {
                lat.record(kind, synchro::cycles::elapsed(t0, synchro::cycles::now()));
            }
            // Quiescent point between operations (ssmem-style).
            reclaim::quiescent();
        }
        lat.record_thread_ops(counts.total());
        (counts, lat)
    });
    let duration = start.elapsed();
    let mut counts = SetCounts::default();
    let mut latency = LatencyRecorder::new();
    for (c, l) in &results {
        counts.merge(c);
        latency.merge(l);
    }
    SetBenchResult {
        counts,
        duration,
        latency,
    }
}

/// Operation counters for one queue-benchmark run.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueCounts {
    /// Enqueues performed.
    pub enqueue: u64,
    /// Dequeues that returned an element.
    pub dequeue_suc: u64,
    /// Dequeues on an empty queue.
    pub dequeue_empty: u64,
}

impl QueueCounts {
    /// Total operations.
    pub fn total(&self) -> u64 {
        self.enqueue + self.dequeue_suc + self.dequeue_empty
    }
}

/// Result of a queue-workload run.
#[derive(Debug)]
pub struct QueueBenchResult {
    /// Merged counters.
    pub counts: QueueCounts,
    /// Measurement window.
    pub duration: Duration,
    /// Enqueue latencies (as [`OpKind::InsertSuc`]) and dequeue latencies
    /// (as [`OpKind::DeleteSuc`]/[`OpKind::DeleteFail`]).
    pub latency: LatencyRecorder,
}

impl QueueBenchResult {
    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        self.counts.total() as f64 / self.duration.as_secs_f64() / 1e6
    }
}

/// Runs the paper's queue microbenchmark (Figure 12): `enqueue_pct`% of
/// issued operations enqueue, the rest dequeue.
pub fn run_queue_workload<Q: ConcurrentQueue + ?Sized>(
    queue: &Q,
    threads: usize,
    duration: Duration,
    enqueue_pct: u32,
    seed: u64,
    record_latency: bool,
) -> QueueBenchResult {
    assert!(enqueue_pct <= 100);
    let start = Instant::now();
    let results = run_workers(threads, duration, |ctx| {
        let mut rng = FastRng::for_thread(seed, ctx.tid);
        let mut counts = QueueCounts::default();
        let mut lat = LatencyRecorder::new();
        while !ctx.should_stop() {
            let t0 = record_latency.then(synchro::cycles::now);
            let kind = if rng.next_below(100) < u64::from(enqueue_pct) {
                queue.enqueue(rng.next_u64());
                counts.enqueue += 1;
                OpKind::InsertSuc
            } else if queue.dequeue().is_some() {
                counts.dequeue_suc += 1;
                OpKind::DeleteSuc
            } else {
                counts.dequeue_empty += 1;
                OpKind::DeleteFail
            };
            if let Some(t0) = t0 {
                lat.record(kind, synchro::cycles::elapsed(t0, synchro::cycles::now()));
            }
            reclaim::quiescent();
            // "After every iteration, threads wait for a short duration, in
            // order to avoid long runs [39]" — small randomized pause.
            synchro::backoff::spin(rng.next_below(32) as u32);
        }
        lat.record_thread_ops(counts.total());
        (counts, lat)
    });
    let duration = start.elapsed();
    let mut counts = QueueCounts::default();
    let mut latency = LatencyRecorder::new();
    for (c, l) in &results {
        counts.enqueue += c.enqueue;
        counts.dequeue_suc += c.dequeue_suc;
        counts.dequeue_empty += c.dequeue_empty;
        latency.merge(l);
    }
    QueueBenchResult {
        counts,
        duration,
        latency,
    }
}

/// Operation counters for one stack-benchmark run.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackCounts {
    /// Pushes performed.
    pub push: u64,
    /// Pops that returned an element.
    pub pop_suc: u64,
    /// Pops on an empty stack.
    pub pop_empty: u64,
}

impl StackCounts {
    /// Total operations.
    pub fn total(&self) -> u64 {
        self.push + self.pop_suc + self.pop_empty
    }
}

/// Result of a stack-workload run.
#[derive(Debug)]
pub struct StackBenchResult {
    /// Merged counters.
    pub counts: StackCounts,
    /// Measurement window.
    pub duration: Duration,
    /// Push latencies (as [`OpKind::InsertSuc`]) and pop latencies (as
    /// [`OpKind::DeleteSuc`]/[`OpKind::DeleteFail`]).
    pub latency: LatencyRecorder,
}

impl StackBenchResult {
    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        self.counts.total() as f64 / self.duration.as_secs_f64() / 1e6
    }
}

/// Runs the §5.5 stack microbenchmark: `push_pct`% of issued operations
/// push, the rest pop. Mirrors [`run_queue_workload`].
pub fn run_stack_workload<S: ConcurrentStack + ?Sized>(
    stack: &S,
    threads: usize,
    duration: Duration,
    push_pct: u32,
    seed: u64,
    record_latency: bool,
) -> StackBenchResult {
    assert!(push_pct <= 100);
    let start = Instant::now();
    let results = run_workers(threads, duration, |ctx| {
        let mut rng = FastRng::for_thread(seed, ctx.tid);
        let mut counts = StackCounts::default();
        let mut lat = LatencyRecorder::new();
        while !ctx.should_stop() {
            let t0 = record_latency.then(synchro::cycles::now);
            let kind = if rng.next_below(100) < u64::from(push_pct) {
                stack.push(rng.next_u64());
                counts.push += 1;
                OpKind::InsertSuc
            } else if stack.pop().is_some() {
                counts.pop_suc += 1;
                OpKind::DeleteSuc
            } else {
                counts.pop_empty += 1;
                OpKind::DeleteFail
            };
            if let Some(t0) = t0 {
                lat.record(kind, synchro::cycles::elapsed(t0, synchro::cycles::now()));
            }
            reclaim::quiescent();
            synchro::backoff::spin(rng.next_below(32) as u32);
        }
        lat.record_thread_ops(counts.total());
        (counts, lat)
    });
    let duration = start.elapsed();
    let mut counts = StackCounts::default();
    let mut latency = LatencyRecorder::new();
    for (c, l) in &results {
        counts.push += c.push;
        counts.pop_suc += c.pop_suc;
        counts.pop_empty += c.pop_empty;
        latency.merge(l);
    }
    StackBenchResult {
        counts,
        duration,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ConcurrentSet, Key, Val};
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    struct MutexSet(Mutex<BTreeMap<Key, Val>>);
    impl MutexSet {
        fn new() -> Self {
            Self(Mutex::new(BTreeMap::new()))
        }
    }
    impl ConcurrentSet for MutexSet {
        fn search(&self, key: Key) -> Option<Val> {
            self.0.lock().unwrap().get(&key).copied()
        }
        fn insert(&self, key: Key, val: Val) -> bool {
            let mut m = self.0.lock().unwrap();
            if let std::collections::btree_map::Entry::Vacant(e) = m.entry(key) {
                e.insert(val);
                true
            } else {
                false
            }
        }
        fn delete(&self, key: Key) -> Option<Val> {
            self.0.lock().unwrap().remove(&key)
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
    }

    struct MutexQueue(Mutex<std::collections::VecDeque<Val>>);
    impl ConcurrentQueue for MutexQueue {
        fn enqueue(&self, val: Val) {
            self.0.lock().unwrap().push_back(val);
        }
        fn dequeue(&self) -> Option<Val> {
            self.0.lock().unwrap().pop_front()
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
    }

    #[test]
    fn run_workers_returns_in_thread_order() {
        let out = run_workers(4, Duration::from_millis(10), |ctx| ctx.tid * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn run_workers_stops_workers() {
        let t0 = Instant::now();
        let counts = run_workers(2, Duration::from_millis(50), |ctx| {
            let mut n = 0u64;
            while !ctx.should_stop() {
                n += 1;
            }
            n
        });
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn set_workload_net_count_matches_final_size() {
        let set = MutexSet::new();
        let w = Workload::paper(64, 20, false);
        w.initial_fill(1, |k, v| set.insert(k, v));
        assert_eq!(set.len(), 64);

        let res = run_set_workload(4, Duration::from_millis(100), &w, 2, false, |_| &set);
        assert!(res.counts.total() > 0);
        let expected = 64i64 + res.counts.net_inserted();
        assert_eq!(set.len() as i64, expected, "counts vs final size");
    }

    #[test]
    fn set_workload_latency_recording_collects_samples() {
        let set = MutexSet::new();
        let w = Workload::paper(16, 20, false);
        w.initial_fill(1, |k, v| set.insert(k, v));
        let res = run_set_workload(2, Duration::from_millis(50), &w, 3, true, |_| &set);
        let any = OpKind::ALL.iter().any(|&k| res.latency.count(k) > 0);
        assert!(any, "some latency samples must exist");
        assert!(res.mops() > 0.0);
    }

    struct MutexStack(Mutex<Vec<Val>>);
    impl ConcurrentStack for MutexStack {
        fn push(&self, val: Val) {
            self.0.lock().unwrap().push(val);
        }
        fn pop(&self) -> Option<Val> {
            self.0.lock().unwrap().pop()
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
    }

    #[test]
    fn stack_workload_counts_balance() {
        let s = MutexStack(Mutex::new(Vec::new()));
        for i in 0..100 {
            s.push(i);
        }
        let res = run_stack_workload(&s, 4, Duration::from_millis(100), 50, 4, false);
        let expected = 100i64 + res.counts.push as i64 - res.counts.pop_suc as i64;
        assert_eq!(s.len() as i64, expected);
        assert!(res.counts.total() > 0);
        assert!(res.mops() > 0.0);
    }

    #[test]
    fn queue_workload_counts_balance() {
        let q = MutexQueue(Mutex::new(std::collections::VecDeque::new()));
        for i in 0..100 {
            q.enqueue(i);
        }
        let res = run_queue_workload(&q, 4, Duration::from_millis(100), 50, 4, false);
        let expected = 100i64 + res.counts.enqueue as i64 - res.counts.dequeue_suc as i64;
        assert_eq!(q.len() as i64, expected);
    }
}
