//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! The workspace builds fully offline (no serde); the benchmark reports
//! need only a small, well-understood subset of JSON: objects, arrays,
//! strings with `\uXXXX`-free escapes, f64 numbers, booleans, and null.
//! Numbers are emitted with Rust's shortest-round-trip `f64` formatting,
//! so `parse(render(x)) == x` for every value the reports produce.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) for stable output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(v) => {
                if v.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Scalar-only arrays render on one line (latency quintuples,
                // thread lists); nested ones get one element per line.
                let scalar = v.iter().all(|e| !matches!(e, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, e) in v.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        e.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, e) in v.iter().enumerate() {
                        pad(out, indent + 1);
                        e.write(out, indent + 1);
                        if i + 1 < v.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    pad(out, indent);
                    out.push(']');
                }
            }
            Json::Obj(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    pad(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < m.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; reports never produce them, but never emit
        // invalid JSON either.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.i,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while matches!(
            self.b.get(self.i),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number `{s}`")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for src in ["null", "true", "false", "0", "-1.5", "\"hey\""] {
            let v = parse(src).unwrap();
            assert_eq!(parse(v.render().trim()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn numbers_roundtrip_exactly() {
        for n in [0.0, 1.0, -3.25, 0.1, 123456.789, 1e-9, 2.0f64.powi(53)] {
            let rendered = Json::Num(n).render();
            let back = parse(rendered.trim()).unwrap().as_f64().unwrap();
            assert_eq!(back, n, "{n} → {rendered}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let src = r#"{"a": [1, 2, {"b": "x\n\"y\""}], "empty": [], "o": {}}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "s": "x", "f": 1.5}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None, "fractional rejected");
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
        assert!(v.as_obj().is_some());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Json::Str("Aé".to_string()));
    }

    #[test]
    fn errors_carry_position() {
        let e = parse("[1, ").unwrap_err();
        assert!(e.at >= 3, "{e}");
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1] x").unwrap_err().msg.contains("trailing"));
        assert!(parse("nul").is_err());
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(Json::Num(f64::NAN).render().trim(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render().trim(), "null");
    }
}
