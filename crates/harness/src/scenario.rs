//! Named benchmark scenarios and the registry that holds them.
//!
//! A [`Scenario`] bundles everything needed to reproduce one curve of one
//! paper figure: a unique dotted name (`fig9.large.harris`), a short
//! description of the paper-expected shape, a way to build the structure
//! under test (the [`Subject`]), and a runner closure that performs one
//! measurement window. The `fig*`/`ablate_*` binaries, the `bench_all`
//! driver, and the correctness tiers (stress + linearizability) all consume
//! the same [`Registry`], so registering a structure once gets it
//! benchmarked, stress-tested, and linearizability-checked automatically.
//!
//! Naming convention: `family.group-suffix.series` where
//!
//! - the **family** (text before the first `.`) identifies the figure or
//!   ablation (`fig9`, `ablate-victim`, ...) — one binary per family;
//! - the **group** (everything before the last `.`) identifies one table:
//!   scenarios sharing a group become columns of the same thread sweep;
//! - the **series** (text after the last `.`) is the column label, normally
//!   the algorithm name.

use std::sync::Arc;
use std::time::Duration;

use crate::api::{ConcurrentMap, ConcurrentQueue, ConcurrentSet, ConcurrentStack, OrderedMap};
use crate::latency::LatencyRecorder;
use crate::runner::{run_queue_workload, run_set_workload, run_stack_workload};
use crate::workload::Workload;

/// Parameters for one measurement window of a scenario.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Number of worker threads.
    pub threads: usize,
    /// Wall-clock measurement window.
    pub duration: Duration,
    /// Seed for workload generation and the initial fill.
    pub seed: u64,
    /// Whether to collect per-operation latency samples.
    pub record_latency: bool,
}

/// The result of one measurement window.
#[derive(Debug)]
pub struct Measurement {
    /// Operations completed across all threads.
    pub ops: u64,
    /// Wall-clock time the window actually took.
    pub wall: Duration,
    /// Latency samples (empty unless requested).
    pub latency: LatencyRecorder,
    /// Scenario-specific extra metrics (e.g. `cas_per_validation`,
    /// `cache_hit_pct`), reported alongside throughput.
    pub extra: Vec<(String, f64)>,
}

impl Measurement {
    /// A measurement with only an operation count and a window.
    pub fn from_ops(ops: u64, wall: Duration) -> Self {
        Self {
            ops,
            wall,
            latency: LatencyRecorder::new(),
            extra: Vec::new(),
        }
    }

    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.wall.as_secs_f64().max(1e-12) / 1e6
    }

    /// Attaches an extra named metric (builder style).
    pub fn with_extra(mut self, key: &str, value: f64) -> Self {
        self.extra.push((key.to_string(), value));
        self
    }
}

impl From<crate::runner::SetBenchResult> for Measurement {
    fn from(r: crate::runner::SetBenchResult) -> Self {
        Self {
            ops: r.counts.total(),
            wall: r.duration,
            latency: r.latency,
            extra: Vec::new(),
        }
    }
}

impl From<crate::runner::QueueBenchResult> for Measurement {
    fn from(r: crate::runner::QueueBenchResult) -> Self {
        Self {
            ops: r.counts.total(),
            wall: r.duration,
            latency: r.latency,
            extra: Vec::new(),
        }
    }
}

impl From<crate::runner::StackBenchResult> for Measurement {
    fn from(r: crate::runner::StackBenchResult) -> Self {
        Self {
            ops: r.counts.total(),
            wall: r.duration,
            latency: r.latency,
            extra: Vec::new(),
        }
    }
}

/// How the correctness tiers can instantiate the structure a scenario
/// benchmarks. `None` marks bench-only scenarios (raw lock loops).
pub enum Subject {
    /// A search data structure (list, hash table, skip list, map, BST).
    Set(Box<dyn Fn() -> Arc<dyn ConcurrentSet> + Send + Sync>),
    /// A FIFO queue.
    Queue(Box<dyn Fn() -> Arc<dyn ConcurrentQueue> + Send + Sync>),
    /// A LIFO stack.
    Stack(Box<dyn Fn() -> Arc<dyn ConcurrentStack> + Send + Sync>),
    /// A key–value map (upsert semantics — the kv store and its backends).
    Map(Box<dyn Fn() -> Arc<dyn ConcurrentMap> + Send + Sync>),
    /// An ordered key–value map (map semantics plus range scans — the
    /// skip-list/BST backends and the stores mounted over them). The
    /// correctness tiers run both the map checks and the range checks on
    /// these subjects.
    Ordered(Box<dyn Fn() -> Arc<dyn OrderedMap> + Send + Sync>),
    /// No instantiable structure (e.g. raw lock-acquisition scenarios).
    None,
}

impl Subject {
    /// Convenience constructor for set subjects.
    pub fn set<S: ConcurrentSet + 'static>(
        make: impl Fn() -> S + Send + Sync + 'static,
    ) -> Subject {
        Subject::Set(Box::new(move || Arc::new(make())))
    }

    /// Convenience constructor for queue subjects.
    pub fn queue<Q: ConcurrentQueue + 'static>(
        make: impl Fn() -> Q + Send + Sync + 'static,
    ) -> Subject {
        Subject::Queue(Box::new(move || Arc::new(make())))
    }

    /// Convenience constructor for stack subjects.
    pub fn stack<S: ConcurrentStack + 'static>(
        make: impl Fn() -> S + Send + Sync + 'static,
    ) -> Subject {
        Subject::Stack(Box::new(move || Arc::new(make())))
    }

    /// Convenience constructor for map subjects.
    pub fn map<M: ConcurrentMap + 'static>(
        make: impl Fn() -> M + Send + Sync + 'static,
    ) -> Subject {
        Subject::Map(Box::new(move || Arc::new(make())))
    }

    /// Convenience constructor for ordered-map subjects.
    pub fn ordered<M: OrderedMap + 'static>(
        make: impl Fn() -> M + Send + Sync + 'static,
    ) -> Subject {
        Subject::Ordered(Box::new(move || Arc::new(make())))
    }

    /// Short tag for listings: `set`, `queue`, `stack`, `map`, `ordered`,
    /// or `-`.
    pub fn kind(&self) -> &'static str {
        match self {
            Subject::Set(_) => "set",
            Subject::Queue(_) => "queue",
            Subject::Stack(_) => "stack",
            Subject::Map(_) => "map",
            Subject::Ordered(_) => "ordered",
            Subject::None => "-",
        }
    }
}

type Runner = Box<dyn Fn(&RunSpec) -> Measurement + Send + Sync>;

/// One named benchmark scenario (see the module docs for naming rules).
pub struct Scenario {
    name: String,
    group: String,
    series: String,
    about: String,
    subject_id: String,
    subject: Subject,
    runner: Runner,
}

impl Scenario {
    /// Creates a fully custom scenario.
    ///
    /// `subject_id` identifies the *implementation* under test (e.g.
    /// `list/harris`); scenarios of the same implementation across different
    /// workloads share it, so the correctness tiers can deduplicate.
    ///
    /// # Panics
    ///
    /// Panics if `name` contains no `.` separator.
    pub fn custom(
        name: &str,
        about: &str,
        subject_id: &str,
        subject: Subject,
        runner: impl Fn(&RunSpec) -> Measurement + Send + Sync + 'static,
    ) -> Self {
        let (group, series) = name
            .rsplit_once('.')
            .unwrap_or_else(|| panic!("scenario name `{name}` needs a `group.series` form"));
        Self {
            name: name.to_string(),
            group: group.to_string(),
            series: series.to_string(),
            about: about.to_string(),
            subject_id: subject_id.to_string(),
            subject,
            runner: Box::new(runner),
        }
    }

    /// The paper's set microbenchmark on a stateless-handle structure:
    /// build, fill to the workload's initial size, run the mixed workload.
    pub fn set<S: ConcurrentSet + 'static>(
        name: &str,
        about: &str,
        subject_id: &str,
        workload: Workload,
        make: impl Fn() -> S + Send + Sync + Clone + 'static,
    ) -> Self {
        let subject = Subject::set(make.clone());
        let w = workload;
        Self::custom(name, about, subject_id, subject, move |spec| {
            let set = make();
            w.initial_fill(spec.seed, |k, v| set.insert(k, v));
            run_set_workload(
                spec.threads,
                spec.duration,
                &w,
                spec.seed,
                spec.record_latency,
                |_| &set,
            )
            .into()
        })
    }

    /// The paper's queue microbenchmark: prefill, then an
    /// `enqueue_pct`/dequeue mix.
    pub fn queue<Q: ConcurrentQueue + 'static>(
        name: &str,
        about: &str,
        subject_id: &str,
        prefill: u64,
        enqueue_pct: u32,
        make: impl Fn() -> Q + Send + Sync + Clone + 'static,
    ) -> Self {
        let subject = Subject::queue(make.clone());
        Self::custom(name, about, subject_id, subject, move |spec| {
            let q = make();
            for i in 0..prefill {
                q.enqueue(i);
            }
            run_queue_workload(
                &q,
                spec.threads,
                spec.duration,
                enqueue_pct,
                spec.seed,
                spec.record_latency,
            )
            .into()
        })
    }

    /// The §5.5 stack microbenchmark: prefill, then a `push_pct`/pop mix.
    pub fn stack<S: ConcurrentStack + 'static>(
        name: &str,
        about: &str,
        subject_id: &str,
        prefill: u64,
        push_pct: u32,
        make: impl Fn() -> S + Send + Sync + Clone + 'static,
    ) -> Self {
        let subject = Subject::stack(make.clone());
        Self::custom(name, about, subject_id, subject, move |spec| {
            let s = make();
            for i in 0..prefill {
                s.push(i);
            }
            run_stack_workload(
                &s,
                spec.threads,
                spec.duration,
                push_pct,
                spec.seed,
                spec.record_latency,
            )
            .into()
        })
    }

    /// Unique dotted name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table identity (name minus the final series segment).
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Column label within the group.
    pub fn series(&self) -> &str {
        &self.series
    }

    /// One-line description including the paper-expected shape.
    pub fn about(&self) -> &str {
        &self.about
    }

    /// Family: the figure/ablation this scenario belongs to.
    pub fn family(&self) -> &str {
        self.name.split('.').next().expect("non-empty name")
    }

    /// Implementation identity shared across workloads (dedup key for the
    /// correctness tiers).
    pub fn subject_id(&self) -> &str {
        &self.subject_id
    }

    /// How the correctness tiers instantiate the structure under test.
    pub fn subject(&self) -> &Subject {
        &self.subject
    }

    /// Runs one measurement window.
    pub fn run(&self, spec: &RunSpec) -> Measurement {
        (self.runner)(spec)
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("subject_id", &self.subject_id)
            .field("subject", &self.subject.kind())
            .finish()
    }
}

/// An ordered collection of uniquely named scenarios.
#[derive(Debug, Default)]
pub struct Registry {
    scenarios: Vec<Scenario>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a scenario.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name — every scenario must be addressable.
    pub fn register(&mut self, scenario: Scenario) {
        assert!(
            !self.scenarios.iter().any(|s| s.name == scenario.name),
            "duplicate scenario name `{}`",
            scenario.name
        );
        self.scenarios.push(scenario);
    }

    /// All scenarios, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Looks up a scenario by exact name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Distinct groups, in first-appearance order.
    pub fn groups(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.scenarios {
            if !out.contains(&s.group.as_str()) {
                out.push(&s.group);
            }
        }
        out
    }

    /// Distinct families, in first-appearance order.
    pub fn families(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.scenarios {
            let f = s.family();
            if !out.contains(&f) {
                out.push(f);
            }
        }
        out
    }

    /// Scenarios whose group equals `group`, in registration order.
    pub fn in_group(&self, group: &str) -> Vec<&Scenario> {
        self.scenarios.iter().filter(|s| s.group == group).collect()
    }

    /// Scenarios matched by any of `patterns`: a pattern selects a scenario
    /// if it equals the name exactly or is a dot-boundary prefix of it
    /// (`fig9` matches `fig9.large.harris`; `fig1` does not match
    /// `fig10.medium.optik`). An empty pattern list selects everything.
    pub fn select(&self, patterns: &[String]) -> Vec<&Scenario> {
        if patterns.is_empty() {
            return self.scenarios.iter().collect();
        }
        self.scenarios
            .iter()
            .filter(|s| {
                patterns.iter().any(|p| {
                    s.name == *p
                        || (s.name.starts_with(p.as_str())
                            && s.name.as_bytes().get(p.len()) == Some(&b'.'))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    struct MutexSet(Mutex<BTreeMap<u64, u64>>);
    impl MutexSet {
        fn new() -> Self {
            Self(Mutex::new(BTreeMap::new()))
        }
    }
    impl ConcurrentSet for MutexSet {
        fn search(&self, key: u64) -> Option<u64> {
            self.0.lock().unwrap().get(&key).copied()
        }
        fn insert(&self, key: u64, val: u64) -> bool {
            let mut m = self.0.lock().unwrap();
            if let std::collections::btree_map::Entry::Vacant(e) = m.entry(key) {
                e.insert(val);
                true
            } else {
                false
            }
        }
        fn delete(&self, key: u64) -> Option<u64> {
            self.0.lock().unwrap().remove(&key)
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
    }

    fn tiny_spec() -> RunSpec {
        RunSpec {
            threads: 2,
            duration: Duration::from_millis(10),
            seed: 7,
            record_latency: false,
        }
    }

    #[test]
    fn set_scenario_runs_and_reports_ops() {
        let s = Scenario::set(
            "figx.small.mutex",
            "baseline",
            "set/mutex",
            Workload::paper(32, 20, false),
            MutexSet::new,
        );
        assert_eq!(s.group(), "figx.small");
        assert_eq!(s.series(), "mutex");
        assert_eq!(s.family(), "figx");
        let m = s.run(&tiny_spec());
        assert!(m.ops > 0);
        assert!(m.mops() > 0.0);
    }

    #[test]
    fn registry_rejects_duplicates_and_selects_by_prefix() {
        let mut r = Registry::new();
        for name in ["fig1.a.x", "fig1.a.y", "fig1.b.x", "fig10.a.x"] {
            r.register(Scenario::custom(name, "", "none", Subject::None, |_spec| {
                Measurement::from_ops(1, Duration::from_millis(1))
            }));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.groups(), vec!["fig1.a", "fig1.b", "fig10.a"]);
        assert_eq!(r.families(), vec!["fig1", "fig10"]);
        assert_eq!(r.in_group("fig1.a").len(), 2);
        // Dot-boundary prefix: `fig1` must not catch `fig10.*`.
        assert_eq!(r.select(&["fig1".into()]).len(), 3);
        assert_eq!(r.select(&["fig1.a.x".into()]).len(), 1);
        assert_eq!(r.select(&[]).len(), 4);
        assert!(r.get("fig1.a.x").is_some());
        assert!(r.get("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn duplicate_name_panics() {
        let mut r = Registry::new();
        let mk = || {
            Scenario::custom("a.b", "", "none", Subject::None, |_s| {
                Measurement::from_ops(1, Duration::from_millis(1))
            })
        };
        r.register(mk());
        r.register(mk());
    }

    #[test]
    fn measurement_extra_builder() {
        let m = Measurement::from_ops(10, Duration::from_millis(5)).with_extra("cas", 1.5);
        assert_eq!(m.extra, vec![("cas".to_string(), 1.5)]);
    }
}
