//! Minimal offline stand-in for the `crossbeam-utils` crate.
//!
//! This workspace builds in environments without network access, so the
//! handful of external APIs it consumes are vendored here. Only the items
//! actually used by the workspace are provided — currently [`CachePadded`].
//! The semantics match the upstream crate; swap this for the real
//! `crossbeam-utils` by removing the `path` key in the root
//! `[workspace.dependencies]`.

#![warn(missing_docs)]

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line.
///
/// Mirrors `crossbeam_utils::CachePadded`: the value is aligned to 128 bytes
/// (two 64-byte lines, matching upstream's choice for x86-64 where the
/// spatial prefetcher pulls cache lines in pairs), so two `CachePadded`
/// values never share a cache line and cannot false-share.
#[derive(Default, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads and aligns a value to the length of a cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(t: T) -> Self {
        CachePadded::new(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_two_cache_lines() {
        assert!(core::mem::align_of::<CachePadded<u8>>() >= 128);
        let a = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let d = (&*a[1] as *const u8 as usize) - (&*a[0] as *const u8 as usize);
        assert!(d >= 128);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut c = CachePadded::new(7u64);
        assert_eq!(*c, 7);
        *c = 9;
        assert_eq!(c.into_inner(), 9);
    }
}
