//! Minimal offline stand-in for the `criterion` benchmark framework.
//!
//! Implements exactly the API surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `Bencher::iter` /
//! `iter_custom`) with a plain timing loop: a warm-up call followed by
//! `sample_size` measured samples, reporting the median per-iteration time.
//! No statistics, plots, or HTML reports. Swap in the real crate by removing
//! the `path` key in the root `[workspace.dependencies]`.
//!
//! Environment knobs:
//!
//! - `CRITERION_STUB_SAMPLES` — override every group's sample count
//!   (useful to keep CI smoke runs short).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a value (re-export of
/// [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark. Recorded and echoed in the
/// report line; the stub performs no per-byte/per-element normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of bytes processed per iteration.
    Bytes(u64),
    /// Number of elements processed per iteration.
    Elements(u64),
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
    env_override: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        let env_override = std::env::var("CRITERION_STUB_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .map(|n: usize| n.max(1));
        Criterion {
            samples: env_override.unwrap_or(3),
            env_override,
        }
    }
}

impl Criterion {
    /// Sets the default number of measured samples per benchmark.
    /// `CRITERION_STUB_SAMPLES`, when set, beats this — it exists so CI
    /// can shorten every bench regardless of what the bench files request.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = self.env_override.unwrap_or(n.max(1));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            env_override: self.env_override,
            throughput: None,
            _parent: self,
        }
    }

    /// Benchmarks a function outside of any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.samples;
        run_one(&id.into(), samples, None, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    env_override: Option<usize>,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples for benchmarks in this group.
    /// `CRITERION_STUB_SAMPLES`, when set, beats this (see
    /// [`Criterion::sample_size`]).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = self.env_override.unwrap_or(n.max(1));
        self
    }

    /// Annotates the group's throughput (echoed in the report line).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Ignored by the stub; kept for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.samples, self.throughput, f);
        self
    }

    /// Closes the group. (No-op in the stub; consumes the group.)
    pub fn finish(self) {}
}

fn run_one<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: one tiny pass so one-time setup cost stays out of the samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let spread = per_iter[per_iter.len() - 1] - per_iter[0];
    let tp = match throughput {
        Some(Throughput::Elements(n)) => format!("  ({n} elem/iter)"),
        Some(Throughput::Bytes(n)) => format!("  ({n} B/iter)"),
        None => String::new(),
    };
    println!(
        "{id:<50} time: {}  (± {} over {samples} samples){tp}",
        fmt_time(median),
        fmt_time(spread),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2} ms", secs * 1e3)
    } else {
        format!("{secs:8.2} s ")
    }
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` with a monotonic wall clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Hands the iteration count to `f`, which returns the total elapsed
    /// time for that many conceptual iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// Declares a function that runs the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target, running the
/// listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes flags like `--bench`; the stub needs none of them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("stub");
            g.sample_size(2).throughput(Throughput::Elements(1));
            g.bench_function("iter", |b| b.iter(|| ran += 1));
            g.bench_function("iter_custom", |b| b.iter_custom(Duration::from_nanos));
            g.finish();
        }
        assert!(ran > 0, "closure must actually run");
    }
}
