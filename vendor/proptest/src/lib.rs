//! Minimal offline stand-in for the `proptest` property-testing framework.
//!
//! Implements the subset the workspace's `tests/property_models.rs` uses:
//!
//! - [`strategy::Strategy`] with `prop_map`, implemented for integer ranges
//!   (`a..b`, `a..=b`) and tuples of strategies,
//! - [`collection::vec`] for variable-length vectors,
//! - the [`proptest!`] macro with `#![proptest_config(..)]`,
//! - [`prop_assert!`] / [`prop_assert_eq!`] and
//!   [`test_runner::TestCaseError`].
//!
//! Generation is deterministic: each test case seeds a SplitMix64 stream
//! from the test's module path, name, and case index, so failures are
//! reproducible run-to-run. There is **no shrinking** — a failing case
//! reports the full generated value instead. Swap in the real crate by
//! removing the `path` key in the root `[workspace.dependencies]`.

#![warn(missing_docs)]

/// Deterministic pseudo-random generation and test-case error types.
pub mod test_runner {
    use std::fmt;

    /// Deterministic SplitMix64 generator used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a stream from an arbitrary label (test name) and case index.
        pub fn deterministic(label: &str, case: u32) -> Self {
            // FNV-1a over the label, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next 64 raw bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift (Lemire) keeps modulo bias negligible.
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }

    /// Why a single generated test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The input was rejected (e.g. by a precondition), not failed.
        Reject(String),
        /// The property does not hold for the generated input.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed property with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected input with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "{r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runs one generated case through the test body. Exists so the
    /// `proptest!`-generated closure gets its argument type pinned to the
    /// strategy's value type (a bare immediately-invoked closure would
    /// infer the parameter from the body and can land on an unsized type).
    pub fn run_case<V, F>(value: V, body: F) -> Result<(), TestCaseError>
    where
        F: FnOnce(V) -> Result<(), TestCaseError>,
    {
        body(value)
    }

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; the stub never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// The stub generates directly (no intermediate `ValueTree`, hence no
    /// shrinking); otherwise the shape mirrors `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Collection strategies ([`vec`](collection::vec)).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Generates a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection::SizeRange;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`): {}",
            stringify!($left), stringify!($right), l, format!($($fmt)*)
        );
    }};
}

/// Declares property tests.
///
/// Supports the common form used by this workspace:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(xs in some_strategy()) {
///         prop_assert!(!xs.is_empty());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($pat:pat in $strat:expr) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategy = $strat;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let value =
                        $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    let repr = format!("{:?}", &value);
                    let result = $crate::test_runner::run_case(value, |$pat| {
                        $body
                        ::std::result::Result::Ok(())
                    });
                    match result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(e) => panic!(
                            "property `{}` failed at case {}/{}:\n  {}\n  input: {}",
                            stringify!($name), case, config.cases, e, repr,
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds", 0);
        for _ in 0..10_000 {
            let x = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&x));
            let y = (1u8..=3).generate(&mut rng);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec((0u8..3, 0u64..100).prop_map(|(a, b)| (a, b)), 1..50);
        let a = strat.generate(&mut TestRng::deterministic("det", 7));
        let b = strat.generate(&mut TestRng::deterministic("det", 7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_smoke(xs in crate::collection::vec(0u64..10, 1..20)) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.len() < 20);
            for &x in &xs {
                prop_assert!(x < 10, "{} out of range", x);
            }
        }
    }
}
