//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides only what the workspace's unit tests use: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! ranges. The generator is SplitMix64 — statistically fine for driving
//! randomized tests, **not** the CSPRNG the real `StdRng` is. Swap in the
//! real crate by removing the `path` key in the root
//! `[workspace.dependencies]`.

#![warn(missing_docs)]

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of type `T` from a range specification. Generic over
/// `T` (rather than an associated type) so the compiled-against use sites
/// infer integer literal types from the value's use site, like real `rand`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range using `rng`.
    fn sample(&self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 raw bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, blanket-implemented for any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

macro_rules! int_sample_range {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Span via the unsigned twin: correct for signed ranges
                // (e.g. -5..5) where `end - start` can exceed $t::MAX.
                let span = self.end.wrapping_sub(self.start) as $u as u128;
                let draw = ((rng.next_u64() as u128) * span) >> 64;
                self.start.wrapping_add(draw as $t)
            }
        }

        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi.wrapping_sub(lo) as $u as u128) + 1;
                let draw = ((rng.next_u64() as u128) * span) >> 64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

int_sample_range!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (isize, usize)
);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64, not a
    /// CSPRNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn gen_range_respects_bounds_and_reaches_them() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let x = rng.gen_range(1..=48u64);
            assert!((1..=48).contains(&x));
            lo_seen |= x == 1;
            hi_seen |= x == 48;
            let y = rng.gen_range(0..3);
            assert!((0..3).contains(&y));
        }
        assert!(lo_seen && hi_seen, "range endpoints should be reachable");
    }

    #[test]
    fn signed_ranges_with_negative_start_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&x));
            lo_seen |= x == -5;
            hi_seen |= x == 4;
            let y = rng.gen_range(i8::MIN..=i8::MAX);
            let _ = y; // full-width span: must not overflow
        }
        assert!(lo_seen && hi_seen, "signed endpoints should be reachable");
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }
}
